/**
 * @file
 * Domain example: incast contention stress on the cycle-level fabric —
 * the regime where the legacy scheduler over-grants.
 *
 * Two sweeps, each run in three scheduler modes:
 *
 *   N-to-1      fan-in senders hammer one memory node with closed-loop
 *               mixed 900 B reads / 700 B writes. Read-request forwards
 *               (multi-block, stream-owned) queue behind write data on
 *               the memory node's downlink while single-block /G/
 *               grants interleave past them — grants reach the memory
 *               node before the requests they pay for.
 *   all-to-all  every node serves memory and requests from every other
 *               node, so hosts hold writer and responder roles at once
 *               (the grant-direction ambiguity regime on top of the
 *               contention).
 *
 * The modes:
 *
 *   legacy  historical accounting and the historical payload-byte port
 *           charge (l/B). Early grants are dropped ("grant for unknown
 *           message"), wasting their line slots and stranding flows.
 *   strict  demand-lifecycle ledger (EdmConfig::strict_grant_accounting):
 *           early grants park, demands retire on the observed final
 *           /MT/ — nothing wasted, but the under-charged port timers
 *           still let egress staging pile up.
 *   wire    wire-charged occupancy (EdmConfig::wire_charged_occupancy)
 *           on top of the strict ledger: port timers charge the chunk's
 *           exact 66-bit block line-time (docs/WIRE_FORMAT.md), pacing
 *           grants at the true wire drain rate. The staging that let
 *           grants outrun their forwards never builds — in the N-to-1
 *           incast regime wasted slots and peak egress staging both
 *           drop well below legacy, and (unlike strict alone) almost
 *           nothing even needs parking.
 *
 * The table quantifies all three per point: completions, wasted granted
 * slots, parked grants, stranded flows, peak egress staging depth
 * (CycleFabric::peakEgressStaging) and read p99.
 *
 * The experiment body is the shared sim/scenario_exec.cpp
 * runIncastPoint — the same code scenarios/incast.edm runs through
 * examples/run_scenario.cpp, so the two tables are bit-identical.
 *
 * Every (point, mode) pair runs as an independent scenario on the
 * ScenarioRunner pool; EDM_SWEEP_THREADS pins the worker count.
 *
 * Build & run:   ./build/incast_stress [rounds] [--quick] [--storm]
 * (--quick: one point per pattern at EDM_BENCH_SCALE-scaled rounds —
 * the CI artifact. Unset, the scale defaults to 0.5.)
 *
 * --storm overlays the scenarios/failure_storm.edm fault campaign on
 * every N-to-1 point: an all-reads workload (so every stranded op is
 * retryable), a correlated corruption storm over the memory node and
 * two senders with auto-repair, host retry/backoff enabled, and the
 * recovery columns (downed / retried / recovered / abandoned /
 * tt_repair) appended to the table. docs/FAULTS.md documents the
 * model and the metric definitions.
 *
 * --tenants replaces the sweep with the noisy-neighbor isolation
 * table over the scenarios/tenant_isolation.edm pool layout: a solo
 * latency-sensitive baseline, the legacy free-for-all, and the
 * hierarchical fair-share row (EdmConfig::fair_share), with per-pool
 * read-tail columns. docs/FAIR_SHARE.md documents the pool tree.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "core/fabric.hpp"
#include "core/occupancy.hpp"
#include "sim/scenario_config.hpp"
#include "sim/scenario_exec.hpp"
#include "sim/scenario_runner.hpp"

namespace {

using namespace edm;
using namespace edm::core;

constexpr int kChainsPerNode = 6;

enum class Mode
{
    Legacy, ///< historical accounting + payload-byte port charge
    Strict, ///< demand-lifecycle ledger enforcement
    Wire,   ///< wire-charged occupancy + strict ledger
};

const char *
modeName(Mode m)
{
    switch (m) {
      case Mode::Legacy: return "legacy";
      case Mode::Strict: return "strict";
      case Mode::Wire: return "wire";
    }
    return "?";
}

struct Point
{
    const char *pattern; ///< "N-to-1" or "all-to-all"
    std::size_t nodes;
    Mode mode;
};

/**
 * --tenants: the noisy-neighbor isolation sweep over the
 * scenarios/tenant_isolation.edm pool layout (docs/FAIR_SHARE.md).
 *
 * Three rows on the same 17-node fan-in:
 *
 *   solo       only the latency-sensitive pool's four hosts issue —
 *              the uncontended baseline for the ls read tail.
 *   legacy     all sixteen clients issue, fair_share off: the ls reads
 *              queue behind both bulk tenants' traffic.
 *   fairshare  the hierarchical pool tree arbitrates — ls grants
 *              bypass, bulk1 hits its rate limit, bulk0 takes the
 *              weighted remainder.
 *
 * Isolation holds when the fairshare ls p99 stays within 2x of solo
 * while the bulk pools keep the fabric saturated
 * (tests/test_fair_share.cpp pins the same ratio).
 */
int
runTenantSweep(int rounds)
{
    // The scenarios/tenant_isolation.edm pool layout, inline.
    TenantSpec tenants;
    tenants.pools.push_back({"bulk0", 1, 6, 3.0, 0.0, 1.0, false});
    tenants.pools.push_back({"bulk1", 7, 12, 1.0, 0.0, 0.4, false});
    tenants.pools.push_back({"ls", 13, 16, 1.0, 0.2, 1.0, true});
    constexpr std::size_t kNodes = 17;

    IncastWorkload wl;
    wl.chains_per_node = 3;

    std::printf("tenant isolation sweep, %d rounds x %d chains/node, "
                "mixed %llu B reads / %llu B writes, pools "
                "bulk0(1-6,w3) bulk1(7-12,limit .4) "
                "ls(13-16,min .2,bypass)\n\n",
                rounds, wl.chains_per_node,
                static_cast<unsigned long long>(wl.read_bytes),
                static_cast<unsigned long long>(wl.write_bytes));

    ScenarioRunner::Options opts;
    opts.base_seed = 7;
    ScenarioRunner runner(opts);

    // solo: only the ls hosts issue — same closed-loop chain shape as
    // runIncastPoint, restricted to hosts 13..16.
    runner.add("solo", [rounds, wl, tenants](ScenarioContext &ctx) {
        EdmConfig cfg;
        cfg.strict_grant_accounting = true;
        cfg.tenants = tenants;
        cfg.num_nodes = kNodes;
        core::CycleFabric fab(cfg, ctx.sim());
        long completed = 0;
        long offered = 0;
        Samples ls_reads;
        std::function<void(NodeId, int)> issue = [&](NodeId from,
                                                     int left) {
            if (left <= 0)
                return;
            if (left % 3 == 0 && wl.write_bytes > 0) {
                fab.write(from, 0, 0x1000u * from,
                          std::vector<std::uint8_t>(wl.write_bytes, 1),
                          [&issue, &completed, from, left](Picoseconds) {
                              ++completed;
                              issue(from, left - 1);
                          });
            } else {
                fab.read(from, 0, 0x1000u * from, wl.read_bytes,
                         [&issue, &completed, &ls_reads, from, left](
                             std::vector<std::uint8_t>, Picoseconds lat,
                             bool) {
                             ++completed;
                             ls_reads.add(toNs(lat));
                             issue(from, left - 1);
                         });
            }
        };
        for (NodeId i = 13; i <= 16; ++i)
            for (int k = 0; k < wl.chains_per_node; ++k) {
                issue(i, rounds);
                offered += rounds;
            }
        fab.run();
        ctx.record("offered", static_cast<double>(offered));
        ctx.record("completed", static_cast<double>(completed));
        ctx.record("pool_ls_p50_ns",
                   ls_reads.count() ? ls_reads.percentile(50) : 0.0);
        ctx.record("pool_ls_p99_ns",
                   ls_reads.count() ? ls_reads.percentile(99) : 0.0);
    });
    for (const bool fair : {false, true})
        runner.add(fair ? "fairshare" : "legacy",
                   [rounds, wl, tenants, fair](ScenarioContext &ctx) {
                       EdmConfig cfg;
                       cfg.strict_grant_accounting = true;
                       cfg.fair_share = fair;
                       cfg.tenants = tenants;
                       runIncastPoint(ctx, IncastPoint{"N-to-1", kNodes},
                                      wl, rounds, cfg, nullptr);
                   });
    const auto results = runner.runAll();

    std::printf("  %-10s %8s %9s", "row", "offered", "completed");
    for (const char *pool : {"bulk0", "bulk1", "ls"})
        std::printf(" %11s %11s", (std::string(pool) + " p50").c_str(),
                    (std::string(pool) + " p99").c_str());
    std::printf("\n");
    const char *names[] = {"solo", "legacy", "fairshare"};
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        std::printf("  %-10s %8.0f %9.0f", names[i],
                    r.metricStat("offered").mean(),
                    r.metricStat("completed").mean());
        for (const char *pool : {"bulk0", "bulk1", "ls"})
            std::printf(" %11.1f %11.1f",
                        r.metricStat("pool_" + std::string(pool) +
                                     "_p50_ns").mean(),
                        r.metricStat("pool_" + std::string(pool) +
                                     "_p99_ns").mean());
        std::printf("\n");
    }

    const double solo_p99 = results[0].metricStat("pool_ls_p99_ns").mean();
    const double legacy_p99 =
        results[1].metricStat("pool_ls_p99_ns").mean();
    const double fair_p99 = results[2].metricStat("pool_ls_p99_ns").mean();
    std::printf("\nls p99 vs solo baseline: legacy %.1fx, fairshare "
                "%.1fx — the pool tree holds the latency-sensitive "
                "tail near its uncontended floor while both bulk "
                "tenants keep the fan-in saturated.\n",
                solo_p99 > 0 ? legacy_p99 / solo_p99 : 0.0,
                solo_p99 > 0 ? fair_p99 / solo_p99 : 0.0);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    int rounds = 20;
    bool quick = false;
    bool storm = false;
    bool tenants = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
            continue;
        }
        if (std::strcmp(argv[i], "--storm") == 0) {
            storm = true;
            continue;
        }
        if (std::strcmp(argv[i], "--tenants") == 0) {
            tenants = true;
            continue;
        }
        rounds = std::atoi(argv[i]);
        if (rounds <= 0) {
            std::fprintf(stderr,
                         "usage: %s [rounds>0] [--quick] [--storm] "
                         "[--tenants]\n",
                         argv[0]);
            return 2;
        }
    }
    // --quick samples at the one scale every CI/rebaseline artifact
    // uses: EDM_BENCH_SCALE, defaulting to 0.5 (the historical
    // 10-of-20 rounds) when unset.
    if (quick)
        rounds = std::max(
            1L, std::lround(rounds * benchScaleEnv(0.5)));

    // --tenants runs its own fixed-shape table (the
    // scenarios/tenant_isolation.edm workload: 8 rounds, 4 when quick).
    if (tenants)
        return runTenantSweep(quick ? 4 : 8);

    if (storm)
        std::printf("incast contention stress under a failure storm, "
                    "%d rounds x 4 chains/node, all-reads 900 B\n",
                    rounds);
    else
        std::printf("incast contention stress, %d rounds x %d "
                    "chains/node, mixed 900 B reads / 700 B writes\n",
                    rounds, kChainsPerNode);

    // The occupancy model's prediction for the peakstage column: every
    // full chunk the legacy charge paces through a saturated egress
    // leaves this many unpaid framing blocks behind in staging; the
    // wire charge leaves none.
    {
        EdmConfig cfg;
        std::printf("staging-growth model (core::"
                    "stagingGrowthBlocksPerChunk, %llu B chunks): "
                    "legacy %.1f blocks/write chunk, %.1f blocks/read "
                    "chunk; wire-charged %.1f\n\n",
                    static_cast<unsigned long long>(cfg.chunk_bytes),
                    stagingGrowthBlocksPerChunk(cfg, false,
                                                cfg.chunk_bytes),
                    stagingGrowthBlocksPerChunk(cfg, true,
                                                cfg.chunk_bytes),
                    [&] {
                        EdmConfig wire = cfg;
                        wire.wire_charged_occupancy = true;
                        return stagingGrowthBlocksPerChunk(
                            wire, false, wire.chunk_bytes);
                    }());
    }

    constexpr Mode kModes[] = {Mode::Legacy, Mode::Strict, Mode::Wire};
    std::vector<Point> points;
    const std::vector<std::size_t> n_to_1 =
        quick ? std::vector<std::size_t>{9}
              : std::vector<std::size_t>{5, 9, 13};
    const std::vector<std::size_t> all_to_all =
        quick ? std::vector<std::size_t>{4}
              : std::vector<std::size_t>{4, 8};
    for (const std::size_t n : n_to_1)
        for (const Mode m : kModes)
            points.push_back(Point{"N-to-1", n, m});
    if (!storm) // the storm campaign targets the N-to-1 fan-in only
        for (const std::size_t n : all_to_all)
            for (const Mode m : kModes)
                points.push_back(Point{"all-to-all", n, m});

    IncastWorkload workload;
    workload.chains_per_node = kChainsPerNode;

    // --storm: the scenarios/failure_storm.edm campaign, inline.
    FaultCampaignSpec faults;
    if (storm) {
        workload.chains_per_node = 4;
        workload.write_bytes = 0; // all-reads: every stranded op retries
        faults.active = true;
        faults.storm_at = 4000 * kNanosecond;
        faults.storm_nodes = {0, 2, 3};
        faults.storm_blocks = 8;
        faults.storm_jitter = 500 * kNanosecond;
        faults.storm_seed = 42;
        faults.repair_after = 6000 * kNanosecond;
    }

    ScenarioRunner::Options opts;
    opts.base_seed = 7;
    ScenarioRunner runner(opts);
    for (const Point &pt : points) {
        runner.add(std::string(pt.pattern) + "/" +
                       std::to_string(pt.nodes) + "/" + modeName(pt.mode),
                   [pt, workload, rounds, storm,
                    &faults](ScenarioContext &ctx) {
                       EdmConfig cfg;
                       cfg.strict_grant_accounting =
                           pt.mode != Mode::Legacy;
                       cfg.wire_charged_occupancy = pt.mode == Mode::Wire;
                       if (storm) {
                           cfg.read_timeout = 150000 * kNanosecond;
                           cfg.read_retry_limit = 5;
                           cfg.read_retry_base = 5000 * kNanosecond;
                           cfg.link_error_threshold = 8;
                       }
                       runIncastPoint(ctx,
                                      IncastPoint{pt.pattern, pt.nodes},
                                      workload, rounds, cfg, &faults);
                   });
    }
    const auto results = runner.runAll();

    std::printf("  %-11s %6s %-7s %8s %9s %8s %8s %9s %9s %11s",
                "pattern", "nodes", "mode", "offered", "completed",
                "wasted", "parked", "stranded", "peakstage", "read p99ns");
    if (storm)
        std::printf(" %7s %8s %9s %9s %12s", "downed", "retried",
                    "recovered", "abandoned", "tt_repair ns");
    std::printf("\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        const Point &pt = points[i];
        std::printf("  %-11s %6zu %-7s %8.0f %9.0f %8.0f %8.0f %9.0f "
                    "%9.0f %11.1f",
                    pt.pattern, pt.nodes, modeName(pt.mode),
                    r.metricStat("offered").mean(),
                    r.metricStat("completed").mean(),
                    r.metricStat("wasted_slots").mean(),
                    r.metricStat("parked").mean(),
                    r.metricStat("stranded").mean(),
                    r.metricStat("peak_staging").mean(),
                    r.metricStat("read_p99").mean());
        if (storm)
            std::printf(" %7.0f %8.0f %9.0f %9.0f %12.1f",
                        r.metricStat("links_disabled").mean(),
                        r.metricStat("retried").mean(),
                        r.metricStat("recovered").mean(),
                        r.metricStat("abandoned").mean(),
                        r.metricStat("tt_repair_ns").mean());
        std::printf("\n");
    }

    std::printf(
        "\nlegacy rows waste granted slots and strand flows under "
        "contention; strict rows park early grants and retire\n"
        "demands on the observed final /MT/ "
        "(EdmConfig::strict_grant_accounting); wire rows additionally "
        "charge port timers\nthe exact 66-bit block line-time "
        "(EdmConfig::wire_charged_occupancy) so grants pace at the true "
        "drain rate — in the\nN-to-1 incast regime wasted slots and "
        "peak egress staging drop well below legacy "
        "(docs/WIRE_FORMAT.md has the arithmetic).\n");
    return 0;
}
