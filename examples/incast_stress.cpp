/**
 * @file
 * Domain example: incast contention stress on the cycle-level fabric —
 * the regime where the legacy scheduler over-grants.
 *
 * Two sweeps, each run with legacy and strict grant accounting:
 *
 *   N-to-1      fan-in senders hammer one memory node with closed-loop
 *               mixed 900 B reads / 700 B writes. Read-request forwards
 *               (multi-block, stream-owned) queue behind write data on
 *               the memory node's downlink while single-block /G/
 *               grants interleave past them — grants reach the memory
 *               node before the requests they pay for.
 *   all-to-all  every node serves memory and requests from every other
 *               node, so hosts hold writer and responder roles at once
 *               (the grant-direction ambiguity regime on top of the
 *               contention).
 *
 * Legacy accounting drops the early grants ("grant for unknown
 * message"), wasting their line slots and stranding their flows; the
 * strict demand-lifecycle ledger parks them instead and retires
 * demands on the observed final /MT/. The table quantifies both: lost
 * completions and wasted slots per point, and the reclaimed difference
 * under EdmConfig::strict_grant_accounting.
 *
 * Every (point, mode) pair runs as an independent scenario on the
 * ScenarioRunner pool; EDM_SWEEP_THREADS pins the worker count.
 *
 * Build & run:   ./build/incast_stress [rounds]
 */

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "core/fabric.hpp"
#include "sim/scenario_runner.hpp"

namespace {

using namespace edm;
using namespace edm::core;

constexpr int kChainsPerNode = 6;

struct Point
{
    const char *pattern; ///< "N-to-1" or "all-to-all"
    std::size_t nodes;
    bool strict;
};

/** Closed-loop mixed read/write chains over a fixed target pattern. */
void
runPoint(ScenarioContext &ctx, const Point &pt, int rounds)
{
    EdmConfig cfg;
    cfg.num_nodes = pt.nodes;
    cfg.strict_grant_accounting = pt.strict;
    Simulation &sim = ctx.sim();
    const bool all_to_all = std::string(pt.pattern) == "all-to-all";
    CycleFabric fab(cfg, sim);

    long completed = 0;
    long offered = 0;
    std::function<void(NodeId, NodeId, int)> issue =
        [&](NodeId from, NodeId to, int left) {
            if (left <= 0)
                return;
            if (left % 3 == 0) {
                fab.write(from, to, 0x1000u * from,
                          std::vector<std::uint8_t>(700, 1),
                          [&issue, &completed, from, to,
                           left](Picoseconds) {
                              ++completed;
                              issue(from, to, left - 1);
                          });
            } else {
                fab.read(from, to, 0x1000u * from, 900,
                         [&issue, &completed, from, to, left](
                             std::vector<std::uint8_t>, Picoseconds,
                             bool) {
                             ++completed;
                             issue(from, to, left - 1);
                         });
            }
        };
    for (NodeId i = 0; i < pt.nodes; ++i) {
        for (int k = 0; k < kChainsPerNode; ++k) {
            if (all_to_all) {
                // Deterministic spread: chain k of node i targets the
                // k-th next node, so every pair stays loaded.
                const auto to = static_cast<NodeId>(
                    (i + 1 + k % (pt.nodes - 1)) % pt.nodes);
                issue(i, to, rounds);
                offered += rounds;
            } else if (i != 0) {
                issue(i, 0, rounds);
                offered += rounds;
            }
        }
    }
    sim.run();

    const auto acc = fab.grantAccounting();
    ctx.record("offered", static_cast<double>(offered));
    ctx.record("completed", static_cast<double>(completed));
    ctx.record("grants",
               static_cast<double>(
                   fab.switchStack().scheduler().grantsIssued()));
    ctx.record("wasted_slots",
               static_cast<double>(acc.wasted_grant_slots));
    ctx.record("parked", static_cast<double>(acc.grants_parked));
    ctx.record("stranded",
               static_cast<double>(
                   fab.switchStack().scheduler().pendingLedgerEntries()));
    Samples reads = fab.readLatency();
    ctx.record("read_p99",
               reads.count() ? reads.percentile(99) : 0.0);
}

} // namespace

int
main(int argc, char **argv)
{
    int rounds = 20;
    if (argc > 1) {
        rounds = std::atoi(argv[1]);
        if (rounds <= 0) {
            std::fprintf(stderr, "usage: %s [rounds>0]\n", argv[0]);
            return 2;
        }
    }

    std::printf("incast contention stress, %d rounds x %d chains/node, "
                "mixed 900 B reads / 700 B writes\n\n",
                rounds, kChainsPerNode);

    std::vector<Point> points;
    for (const std::size_t n : {5, 9, 13})
        for (const bool strict : {false, true})
            points.push_back(Point{"N-to-1", n, strict});
    for (const std::size_t n : {4, 8})
        for (const bool strict : {false, true})
            points.push_back(Point{"all-to-all", n, strict});

    ScenarioRunner::Options opts;
    opts.base_seed = 7;
    ScenarioRunner runner(opts);
    for (const Point &pt : points) {
        runner.add(std::string(pt.pattern) + "/" +
                       std::to_string(pt.nodes) +
                       (pt.strict ? "/strict" : "/legacy"),
                   [pt, rounds](ScenarioContext &ctx) {
                       runPoint(ctx, pt, rounds);
                   });
    }
    const auto results = runner.runAll();

    std::printf("  %-11s %6s %-7s %9s %9s %8s %8s %9s %11s\n", "pattern",
                "nodes", "mode", "offered", "completed", "wasted",
                "parked", "stranded", "read p99ns");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        const Point &pt = points[i];
        std::printf("  %-11s %6zu %-7s %9.0f %9.0f %8.0f %8.0f %9.0f "
                    "%11.1f\n",
                    pt.pattern, pt.nodes,
                    pt.strict ? "strict" : "legacy",
                    r.metricStat("offered").mean(),
                    r.metricStat("completed").mean(),
                    r.metricStat("wasted_slots").mean(),
                    r.metricStat("parked").mean(),
                    r.metricStat("stranded").mean(),
                    r.metricStat("read_p99").mean());
    }

    std::printf("\nlegacy rows waste granted slots and strand flows under "
                "contention; strict rows park early grants and retire\n"
                "demands on the observed final /MT/ "
                "(EdmConfig::strict_grant_accounting), completing every "
                "operation warning-clean.\n");
    return 0;
}
