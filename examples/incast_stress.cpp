/**
 * @file
 * Domain example: incast contention stress on the cycle-level fabric —
 * the regime where the legacy scheduler over-grants.
 *
 * Two sweeps, each run in three scheduler modes:
 *
 *   N-to-1      fan-in senders hammer one memory node with closed-loop
 *               mixed 900 B reads / 700 B writes. Read-request forwards
 *               (multi-block, stream-owned) queue behind write data on
 *               the memory node's downlink while single-block /G/
 *               grants interleave past them — grants reach the memory
 *               node before the requests they pay for.
 *   all-to-all  every node serves memory and requests from every other
 *               node, so hosts hold writer and responder roles at once
 *               (the grant-direction ambiguity regime on top of the
 *               contention).
 *
 * The modes:
 *
 *   legacy  historical accounting and the historical payload-byte port
 *           charge (l/B). Early grants are dropped ("grant for unknown
 *           message"), wasting their line slots and stranding flows.
 *   strict  demand-lifecycle ledger (EdmConfig::strict_grant_accounting):
 *           early grants park, demands retire on the observed final
 *           /MT/ — nothing wasted, but the under-charged port timers
 *           still let egress staging pile up.
 *   wire    wire-charged occupancy (EdmConfig::wire_charged_occupancy)
 *           on top of the strict ledger: port timers charge the chunk's
 *           exact 66-bit block line-time (docs/WIRE_FORMAT.md), pacing
 *           grants at the true wire drain rate. The staging that let
 *           grants outrun their forwards never builds — in the N-to-1
 *           incast regime wasted slots and peak egress staging both
 *           drop well below legacy, and (unlike strict alone) almost
 *           nothing even needs parking.
 *
 * The table quantifies all three per point: completions, wasted granted
 * slots, parked grants, stranded flows, peak egress staging depth
 * (CycleFabric::peakEgressStaging) and read p99.
 *
 * Every (point, mode) pair runs as an independent scenario on the
 * ScenarioRunner pool; EDM_SWEEP_THREADS pins the worker count.
 *
 * Build & run:   ./build/incast_stress [rounds] [--quick]
 * (--quick: one point per pattern at reduced rounds — the CI artifact.)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "core/fabric.hpp"
#include "core/occupancy.hpp"
#include "sim/scenario_runner.hpp"

namespace {

using namespace edm;
using namespace edm::core;

constexpr int kChainsPerNode = 6;

enum class Mode
{
    Legacy, ///< historical accounting + payload-byte port charge
    Strict, ///< demand-lifecycle ledger enforcement
    Wire,   ///< wire-charged occupancy + strict ledger
};

const char *
modeName(Mode m)
{
    switch (m) {
      case Mode::Legacy: return "legacy";
      case Mode::Strict: return "strict";
      case Mode::Wire: return "wire";
    }
    return "?";
}

struct Point
{
    const char *pattern; ///< "N-to-1" or "all-to-all"
    std::size_t nodes;
    Mode mode;
};

/** Closed-loop mixed read/write chains over a fixed target pattern. */
void
runPoint(ScenarioContext &ctx, const Point &pt, int rounds)
{
    EdmConfig cfg;
    cfg.num_nodes = pt.nodes;
    cfg.strict_grant_accounting = pt.mode != Mode::Legacy;
    cfg.wire_charged_occupancy = pt.mode == Mode::Wire;
    Simulation &sim = ctx.sim();
    const bool all_to_all = std::string(pt.pattern) == "all-to-all";
    CycleFabric fab(cfg, sim);

    long completed = 0;
    long offered = 0;
    std::function<void(NodeId, NodeId, int)> issue =
        [&](NodeId from, NodeId to, int left) {
            if (left <= 0)
                return;
            if (left % 3 == 0) {
                fab.write(from, to, 0x1000u * from,
                          std::vector<std::uint8_t>(700, 1),
                          [&issue, &completed, from, to,
                           left](Picoseconds) {
                              ++completed;
                              issue(from, to, left - 1);
                          });
            } else {
                fab.read(from, to, 0x1000u * from, 900,
                         [&issue, &completed, from, to, left](
                             std::vector<std::uint8_t>, Picoseconds,
                             bool) {
                             ++completed;
                             issue(from, to, left - 1);
                         });
            }
        };
    for (NodeId i = 0; i < pt.nodes; ++i) {
        for (int k = 0; k < kChainsPerNode; ++k) {
            if (all_to_all) {
                // Deterministic spread: chain k of node i targets the
                // k-th next node, so every pair stays loaded.
                const auto to = static_cast<NodeId>(
                    (i + 1 + k % (pt.nodes - 1)) % pt.nodes);
                issue(i, to, rounds);
                offered += rounds;
            } else if (i != 0) {
                issue(i, 0, rounds);
                offered += rounds;
            }
        }
    }
    sim.run();

    const auto acc = fab.grantAccounting();
    ctx.record("offered", static_cast<double>(offered));
    ctx.record("completed", static_cast<double>(completed));
    ctx.record("grants",
               static_cast<double>(
                   fab.switchStack().scheduler().grantsIssued()));
    ctx.record("wasted_slots",
               static_cast<double>(acc.wasted_grant_slots));
    ctx.record("parked", static_cast<double>(acc.grants_parked));
    ctx.record("stranded",
               static_cast<double>(
                   fab.switchStack().scheduler().pendingLedgerEntries()));
    ctx.record("peak_staging",
               static_cast<double>(fab.peakEgressStaging()));
    Samples reads = fab.readLatency();
    ctx.record("read_p99",
               reads.count() ? reads.percentile(99) : 0.0);
}

} // namespace

int
main(int argc, char **argv)
{
    int rounds = 20;
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
            continue;
        }
        rounds = std::atoi(argv[i]);
        if (rounds <= 0) {
            std::fprintf(stderr, "usage: %s [rounds>0] [--quick]\n",
                         argv[0]);
            return 2;
        }
    }
    if (quick)
        rounds = std::min(rounds, 10);

    std::printf("incast contention stress, %d rounds x %d chains/node, "
                "mixed 900 B reads / 700 B writes\n",
                rounds, kChainsPerNode);

    // The occupancy model's prediction for the peakstage column: every
    // full chunk the legacy charge paces through a saturated egress
    // leaves this many unpaid framing blocks behind in staging; the
    // wire charge leaves none.
    {
        EdmConfig cfg;
        std::printf("staging-growth model (core::"
                    "stagingGrowthBlocksPerChunk, %llu B chunks): "
                    "legacy %.1f blocks/write chunk, %.1f blocks/read "
                    "chunk; wire-charged %.1f\n\n",
                    static_cast<unsigned long long>(cfg.chunk_bytes),
                    stagingGrowthBlocksPerChunk(cfg, false,
                                                cfg.chunk_bytes),
                    stagingGrowthBlocksPerChunk(cfg, true,
                                                cfg.chunk_bytes),
                    [&] {
                        EdmConfig wire = cfg;
                        wire.wire_charged_occupancy = true;
                        return stagingGrowthBlocksPerChunk(
                            wire, false, wire.chunk_bytes);
                    }());
    }

    constexpr Mode kModes[] = {Mode::Legacy, Mode::Strict, Mode::Wire};
    std::vector<Point> points;
    const std::vector<std::size_t> n_to_1 =
        quick ? std::vector<std::size_t>{9}
              : std::vector<std::size_t>{5, 9, 13};
    const std::vector<std::size_t> all_to_all =
        quick ? std::vector<std::size_t>{4}
              : std::vector<std::size_t>{4, 8};
    for (const std::size_t n : n_to_1)
        for (const Mode m : kModes)
            points.push_back(Point{"N-to-1", n, m});
    for (const std::size_t n : all_to_all)
        for (const Mode m : kModes)
            points.push_back(Point{"all-to-all", n, m});

    ScenarioRunner::Options opts;
    opts.base_seed = 7;
    ScenarioRunner runner(opts);
    for (const Point &pt : points) {
        runner.add(std::string(pt.pattern) + "/" +
                       std::to_string(pt.nodes) + "/" + modeName(pt.mode),
                   [pt, rounds](ScenarioContext &ctx) {
                       runPoint(ctx, pt, rounds);
                   });
    }
    const auto results = runner.runAll();

    std::printf("  %-11s %6s %-7s %8s %9s %8s %8s %9s %9s %11s\n",
                "pattern", "nodes", "mode", "offered", "completed",
                "wasted", "parked", "stranded", "peakstage", "read p99ns");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        const Point &pt = points[i];
        std::printf("  %-11s %6zu %-7s %8.0f %9.0f %8.0f %8.0f %9.0f "
                    "%9.0f %11.1f\n",
                    pt.pattern, pt.nodes, modeName(pt.mode),
                    r.metricStat("offered").mean(),
                    r.metricStat("completed").mean(),
                    r.metricStat("wasted_slots").mean(),
                    r.metricStat("parked").mean(),
                    r.metricStat("stranded").mean(),
                    r.metricStat("peak_staging").mean(),
                    r.metricStat("read_p99").mean());
    }

    std::printf(
        "\nlegacy rows waste granted slots and strand flows under "
        "contention; strict rows park early grants and retire\n"
        "demands on the observed final /MT/ "
        "(EdmConfig::strict_grant_accounting); wire rows additionally "
        "charge port timers\nthe exact 66-bit block line-time "
        "(EdmConfig::wire_charged_occupancy) so grants pace at the true "
        "drain rate — in the\nN-to-1 incast regime wasted slots and "
        "peak egress staging drop well below legacy "
        "(docs/WIRE_FORMAT.md has the arithmetic).\n");
    return 0;
}
