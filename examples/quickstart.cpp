/**
 * @file
 * Quickstart: stand up a two-node EDM fabric (compute + memory + switch,
 * the paper's Figure 4 testbed) and issue the three remote-memory
 * operations — read, write, and atomic compare-and-swap.
 *
 * Build & run:   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/fabric.hpp"

int
main()
{
    using namespace edm;

    // One simulation owns the clock; node 1 has DRAM attached.
    Simulation sim(/*seed=*/1);
    core::EdmConfig cfg;
    cfg.num_nodes = 2;
    cfg.link_rate = Gbps{25.0}; // the paper's 25 GbE prototype
    core::CycleFabric fabric(cfg, sim, /*memory_nodes=*/{1});

    // Seed remote memory directly (as a host OS would at boot).
    std::vector<std::uint8_t> greeting = {'E', 'D', 'M', '!', 0};
    fabric.host(1).store()->write(0x1000, greeting);

    // --- remote read (RREQ -> RRES) ---
    fabric.read(0, 1, 0x1000, 5,
                [](std::vector<std::uint8_t> data, Picoseconds lat,
                   bool timed_out) {
                    std::printf("read  : \"%s\" in %.2f ns (timeout=%d)\n",
                                reinterpret_cast<const char *>(data.data()),
                                toNs(lat), timed_out);
                });
    sim.run();

    // --- remote write (notify -> grant -> WREQ) ---
    std::vector<std::uint8_t> value(64, 0x42);
    fabric.write(0, 1, 0x2000, value, [](Picoseconds lat) {
        std::printf("write : 64 B delivered in %.2f ns\n", toNs(lat));
    });
    sim.run();

    // --- atomic compare-and-swap at the memory node's NIC (§3.2.1) ---
    fabric.host(1).store()->write64(0x3000, 7);
    fabric.rmw(0, 1, 0x3000, mem::RmwOp::CompareAndSwap, /*expected=*/7,
               /*desired=*/99,
               [](mem::RmwResult r, Picoseconds lat) {
                   std::printf("cas   : old=%llu swapped=%d in %.2f ns\n",
                               static_cast<unsigned long long>(r.old_value),
                               r.swapped, toNs(lat));
               });
    sim.run();

    std::printf("\nfabric stats: %llu grants issued, %llu blocks "
                "forwarded by the switch\n",
                static_cast<unsigned long long>(
                    fabric.switchStack().scheduler().grantsIssued()),
                static_cast<unsigned long long>(
                    fabric.switchStack().stats().blocks_forwarded));
    return 0;
}
