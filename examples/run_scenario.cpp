/**
 * @file
 * Declarative scenario runner: execute a scenario (.edm) file.
 *
 * The scenario file names the experiment kind (incast contention or
 * preemption interference), its topology/workload parameters, the
 * sweep points and the EdmConfig flag set per mode; the experiment
 * bodies are the shared sim/scenario_exec.cpp functions the
 * hand-written examples also call, so a scenario run reproduces the
 * example tables bit-exactly.
 *
 * With --trace, every fabric decision (grants, ledger lifecycle,
 * trains, preemption, faults, id-wrap stalls) is recorded to a binary
 * event log (docs/EVENT_LOG.md) queryable offline with tools/edm_trace.
 * The event log is single-threaded, so --trace pins the scenario pool
 * to one worker; recording never perturbs schedules.
 *
 * Build & run:
 *   ./build/run_scenario scenarios/incast.edm
 *   ./build/run_scenario scenarios/incast.edm --quick
 *   ./build/run_scenario scenarios/incast.edm --trace incast.trace
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sim/scenario_config.hpp"
#include "sim/scenario_exec.hpp"
#include "sim/scenario_runner.hpp"
#include "trace/event_log.hpp"

namespace {

using namespace edm;

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s <scenario.edm> [--quick] [--trace FILE] "
                 "[--threads N]\n",
                 argv0);
    return 2;
}

struct IncastRow
{
    std::string pattern;
    std::size_t nodes;
    std::string mode;
};

int
runIncast(const ScenarioSpec &spec, bool quick,
          trace::EventLog *log, unsigned threads)
{
    int rounds = spec.rounds;
    if (quick)
        rounds = static_cast<int>(
            std::max(1L, std::lround(rounds * benchScaleEnv(0.5))));

    const std::vector<std::size_t> &n_to_1 =
        quick && !spec.quick_n_to_1.empty() ? spec.quick_n_to_1
                                            : spec.n_to_1;
    const std::vector<std::size_t> &all_to_all =
        quick && !spec.quick_all_to_all.empty() ? spec.quick_all_to_all
                                                : spec.all_to_all;

    std::printf("scenario %s (incast), %d rounds x %d chains/node, "
                "mixed %llu B reads / %llu B writes\n\n",
                spec.name.c_str(), rounds, spec.workload.chains_per_node,
                static_cast<unsigned long long>(spec.workload.read_bytes),
                static_cast<unsigned long long>(
                    spec.workload.write_bytes));

    std::vector<IncastRow> rows;
    ScenarioRunner::Options opts;
    opts.base_seed = spec.base_seed;
    opts.threads = threads;
    ScenarioRunner runner(opts);
    auto add_point = [&](const char *pattern, std::size_t nodes) {
        for (const ScenarioModeSpec &mode : spec.modes) {
            core::EdmConfig cfg = spec.configFor(mode);
            cfg.event_log = log;
            rows.push_back(IncastRow{pattern, nodes, mode.name});
            runner.add(std::string(pattern) + "/" +
                           std::to_string(nodes) + "/" + mode.name,
                       [pattern, nodes, cfg, &spec,
                        rounds](ScenarioContext &ctx) {
                           runIncastPoint(ctx,
                                          IncastPoint{pattern, nodes},
                                          spec.workload, rounds, cfg,
                                          &spec.faults);
                       });
        }
    };
    for (const std::size_t n : n_to_1)
        add_point("N-to-1", n);
    for (const std::size_t n : all_to_all)
        add_point("all-to-all", n);

    const auto results = runner.runAll();

    const bool faults = spec.faults.active;
    const bool tenanted = spec.tenants.active();
    std::printf("  %-11s %6s %-9s %8s %9s %8s %8s %9s %9s %11s",
                "pattern", "nodes", "mode", "offered", "completed",
                "wasted", "parked", "stranded", "peakstage", "read p99ns");
    if (faults)
        std::printf(" %7s %8s %9s %9s %12s", "downed", "retried",
                    "recovered", "abandoned", "tt_repair ns");
    if (tenanted)
        for (const auto &pool : spec.tenants.pools)
            std::printf(" %11s %11s", (pool.name + " p50").c_str(),
                        (pool.name + " p99").c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        const IncastRow &row = rows[i];
        std::printf("  %-11s %6zu %-9s %8.0f %9.0f %8.0f %8.0f %9.0f "
                    "%9.0f %11.1f",
                    row.pattern.c_str(), row.nodes, row.mode.c_str(),
                    r.metricStat("offered").mean(),
                    r.metricStat("completed").mean(),
                    r.metricStat("wasted_slots").mean(),
                    r.metricStat("parked").mean(),
                    r.metricStat("stranded").mean(),
                    r.metricStat("peak_staging").mean(),
                    r.metricStat("read_p99").mean());
        if (faults)
            std::printf(" %7.0f %8.0f %9.0f %9.0f %12.1f",
                        r.metricStat("links_disabled").mean(),
                        r.metricStat("retried").mean(),
                        r.metricStat("recovered").mean(),
                        r.metricStat("abandoned").mean(),
                        r.metricStat("tt_repair_ns").mean());
        if (tenanted)
            for (const auto &pool : spec.tenants.pools)
                std::printf(" %11.1f %11.1f",
                            r.metricStat("pool_" + pool.name + "_p50_ns")
                                .mean(),
                            r.metricStat("pool_" + pool.name + "_p99_ns")
                                .mean());
        std::printf("\n");
    }
    return 0;
}

int
runInterference(const ScenarioSpec &spec, bool quick,
                trace::EventLog *log, unsigned threads)
{
    const int max_frames = quick ? std::min(spec.max_frames, 2)
                                 : spec.max_frames;

    std::printf("scenario %s (interference), %llu B reads vs 0..%d "
                "x %zu B jumbo frames at %.0f G\n\n",
                spec.name.c_str(),
                static_cast<unsigned long long>(
                    spec.interference.read_bytes),
                max_frames, spec.interference.frame_payload,
                spec.interference.link_gbps);

    ScenarioRunner::Options opts;
    opts.base_seed = spec.base_seed;
    opts.threads = threads;
    ScenarioRunner runner(opts);
    const ScenarioModeSpec &mode = spec.modes.front();
    core::EdmConfig cfg = spec.configFor(mode);
    cfg.event_log = log;
    for (int frames = 0; frames <= max_frames; ++frames)
        runner.add("jumbo x" + std::to_string(frames),
                   [frames, cfg, &spec](ScenarioContext &ctx) {
                       runInterferencePoint(ctx, spec.interference,
                                            frames, cfg);
                   });
    const auto results = runner.runAll();

    const double clean = results[0].metricStat("read_ns").mean();
    std::printf("unloaded read: %8.2f ns\n\n", clean);
    std::printf("  %-10s %12s %12s %10s\n", "frames", "read ns",
                "+interf ns", "delivered");
    for (int frames = 1; frames <= max_frames; ++frames) {
        const auto &r = results[static_cast<std::size_t>(frames)];
        const double ns = r.metricStat("read_ns").mean();
        std::printf("  %-10d %12.2f %12.2f %10.0f\n", frames, ns,
                    ns - clean,
                    r.metricStat("frames_delivered").mean());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path;
    std::string trace_path;
    bool quick = false;
    unsigned threads = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
            trace_path = argv[++i];
        } else if (std::strcmp(argv[i], "--threads") == 0 &&
                   i + 1 < argc) {
            threads = static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (argv[i][0] == '-') {
            return usage(argv[0]);
        } else if (path.empty()) {
            path = argv[i];
        } else {
            return usage(argv[0]);
        }
    }
    if (path.empty())
        return usage(argv[0]);

    ScenarioSpec spec;
    std::string error;
    if (!loadScenarioSpec(path, spec, error)) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
        return 1;
    }

    trace::EventLog log;
    trace::EventLog *log_ptr = nullptr;
    if (!trace_path.empty()) {
        if (!log.openFile(trace_path)) {
            std::fprintf(stderr, "cannot write trace file %s\n",
                         trace_path.c_str());
            return 1;
        }
        log_ptr = &log;
        // The event log is not thread-safe; tracing serializes the pool.
        threads = 1;
    }

    const int rc = spec.kind == "incast"
        ? runIncast(spec, quick, log_ptr, threads)
        : runInterference(spec, quick, log_ptr, threads);

    if (log_ptr) {
        log.close();
        std::printf("\nwrote %llu trace records to %s "
                    "(query with tools/edm_trace)\n",
                    static_cast<unsigned long long>(log.totalRecorded()),
                    trace_path.c_str());
    }
    return rc;
}
