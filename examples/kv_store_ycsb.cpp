/**
 * @file
 * Domain example: a remote key-value store served from a disaggregated
 * memory node, driven by YCSB workloads A, B and F (the paper's §4.2.2
 * application scenario). Reports average/percentile GET and PUT
 * latencies over the EDM fabric.
 *
 * The three YCSB mixes are independent simulations, so they run as
 * ScenarioRunner scenarios on the thread pool (one per workload).
 *
 * Build & run:   ./build/kv_store_ycsb
 */

#include <cstdio>
#include <vector>

#include "kv/kv_store.hpp"
#include "sim/scenario_runner.hpp"
#include "workload/ycsb.hpp"

namespace {

using namespace edm;
using workload::YcsbWorkload;

void
runYcsb(ScenarioContext &ctx, YcsbWorkload w)
{
    Simulation &sim = ctx.sim();
    core::EdmConfig cfg;
    cfg.num_nodes = 2;
    cfg.link_rate = Gbps{25.0};
    core::CycleFabric fabric(cfg, sim, {1});

    constexpr std::uint64_t kKeys = 2048;
    kv::KvStore store(fabric, /*client=*/0, /*server=*/1, kKeys,
                      /*slot_bytes=*/1024);
    workload::YcsbGenerator gen(w, kKeys, 13);

    // Load phase: populate every key with a 1 KB object.
    for (std::uint64_t k = 0; k < kKeys; ++k) {
        store.put(k, std::vector<std::uint8_t>(1024, 0xAB));
        sim.run();
    }

    // Run phase.
    std::uint64_t misses = 0;
    for (int i = 0; i < 2000; ++i) {
        const auto op = gen.next();
        if (op.is_write) {
            store.put(op.key, std::vector<std::uint8_t>(op.size, 0x11),
                      [&](Picoseconds l) {
                          ctx.record("put_ns", toNs(l));
                      });
        } else {
            store.get(op.key, [&](auto value, Picoseconds l) {
                ctx.record("get_ns", toNs(l));
                misses += !value.has_value();
            });
        }
        sim.run();
    }
    ctx.record("misses", static_cast<double>(misses));
}

} // namespace

int
main()
{
    const std::vector<YcsbWorkload> workloads = {
        YcsbWorkload::A, YcsbWorkload::B, YcsbWorkload::F};

    ScenarioRunner runner;
    for (auto w : workloads)
        runner.add("YCSB-" + workload::ycsbName(w),
                   [w](ScenarioContext &ctx) { runYcsb(ctx, w); });
    const auto results = runner.runAll();

    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        const auto &get_lat = r.metrics.at("get_ns");
        const auto &put_lat = r.metrics.at("put_ns");
        std::printf("YCSB-%s: GET avg %7.1f ns (p99 %7.1f), "
                    "PUT avg %7.1f ns (p99 %7.1f), misses %llu\n",
                    workload::ycsbName(workloads[i]).c_str(),
                    get_lat.mean(), get_lat.percentile(99),
                    put_lat.mean(), put_lat.percentile(99),
                    static_cast<unsigned long long>(
                        r.metricStat("misses").sum()));
    }
    std::printf("\nGET latency summary (per scenario + merged):\n%s",
                ScenarioRunner::summaryTable(results, "get_ns").c_str());
    std::printf("\n(every operation crosses the real block-level fabric:"
                " ~300 ns EDM floor + DRAM + serialization)\n");
    return 0;
}
