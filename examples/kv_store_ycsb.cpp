/**
 * @file
 * Domain example: a remote key-value store served from a disaggregated
 * memory node, driven by YCSB workloads A, B and F (the paper's §4.2.2
 * application scenario). Reports average/percentile GET and PUT
 * latencies over the EDM fabric.
 *
 * Build & run:   ./build/examples/kv_store_ycsb
 */

#include <cstdio>

#include "kv/kv_store.hpp"
#include "workload/ycsb.hpp"

int
main()
{
    using namespace edm;
    using workload::YcsbWorkload;

    for (auto w : {YcsbWorkload::A, YcsbWorkload::B, YcsbWorkload::F}) {
        Simulation sim(7);
        core::EdmConfig cfg;
        cfg.num_nodes = 2;
        cfg.link_rate = Gbps{25.0};
        core::CycleFabric fabric(cfg, sim, {1});

        constexpr std::uint64_t kKeys = 2048;
        kv::KvStore store(fabric, /*client=*/0, /*server=*/1, kKeys,
                          /*slot_bytes=*/1024);
        workload::YcsbGenerator gen(w, kKeys, 13);

        // Load phase: populate every key with a 1 KB object.
        for (std::uint64_t k = 0; k < kKeys; ++k) {
            store.put(k, std::vector<std::uint8_t>(1024, 0xAB));
            sim.run();
        }

        // Run phase.
        Samples get_lat, put_lat;
        std::uint64_t misses = 0;
        for (int i = 0; i < 2000; ++i) {
            const auto op = gen.next();
            if (op.is_write) {
                store.put(op.key,
                          std::vector<std::uint8_t>(op.size, 0x11),
                          [&](Picoseconds l) { put_lat.add(toNs(l)); });
            } else {
                store.get(op.key, [&](auto value, Picoseconds l) {
                    get_lat.add(toNs(l));
                    misses += !value.has_value();
                });
            }
            sim.run();
        }

        std::printf("YCSB-%s: GET avg %7.1f ns (p99 %7.1f), "
                    "PUT avg %7.1f ns (p99 %7.1f), misses %llu\n",
                    workload::ycsbName(w).c_str(), get_lat.mean(),
                    get_lat.percentile(99), put_lat.mean(),
                    put_lat.percentile(99),
                    static_cast<unsigned long long>(misses));
    }
    std::printf("\n(every operation crosses the real block-level fabric:"
                " ~300 ns EDM floor + DRAM + serialization)\n");
    return 0;
}
