#!/usr/bin/env bash
#
# Markdown link lint: every relative link target in README.md and
# docs/*.md must exist in the tree. External (http/https/mailto) and
# pure-anchor links are skipped; a `#fragment` suffix on a file link is
# stripped before the existence check. Exits non-zero listing every
# broken link — the CI docs job gate.
#
# Usage: tools/check_markdown_links.sh [file.md ...]
#        (no arguments: README.md + docs/**/*.md)

set -uo pipefail

ROOT=$(cd "$(dirname "$0")/.." && pwd)
cd "$ROOT"

files=("$@")
if [[ ${#files[@]} -eq 0 ]]; then
    files=(README.md)
    while IFS= read -r f; do
        files+=("$f")
    done < <(find docs -name '*.md' 2>/dev/null | sort)
fi

broken=0
checked=0
for f in "${files[@]}"; do
    if [[ ! -f "$f" ]]; then
        echo "BROKEN  $f: file listed for linting does not exist"
        broken=$((broken + 1))
        continue
    fi
    dir=$(dirname "$f")
    # Inline links/images: capture the (...) target of [...](...).
    while IFS= read -r target; do
        case "$target" in
          http://*|https://*|mailto:*) continue ;;  # external
          '#'*) continue ;;                         # in-page anchor
          '') continue ;;
        esac
        checked=$((checked + 1))
        path=${target%%#*}        # drop a #fragment suffix
        path=${path%% *}          # drop a "title" suffix
        if [[ ! -e "$dir/$path" && ! -e "$path" ]]; then
            echo "BROKEN  $f -> $target"
            broken=$((broken + 1))
        fi
    done < <(grep -oE '\[[^]]*\]\([^)]+\)' "$f" |
             sed -E 's/.*\(([^)]+)\)/\1/')
done

echo "checked ${#files[@]} file(s), $checked relative link(s), \
$broken broken"
[[ $broken -eq 0 ]]
