#!/usr/bin/env bash
#
# Golden-rebaseline pipeline — the ONLY sanctioned way to change
# tests/golden_figs_values.inc. See docs/REBASELINE.md for when a
# schedule change is legitimate and how to review the output.
#
# What it does:
#   1. builds test_golden_figs (and the quick benches),
#   2. regenerates the golden arrays via EDM_GOLDEN_REGEN=1,
#   3. rewrites tests/golden_figs_values.inc for the selected mode set
#      (arrays outside the set keep their previous values),
#   4. prints a before/after schedule-diff summary per array,
#   5. re-runs test_golden_figs to prove the new baselines pass,
#   6. refreshes the quick-scale BENCH_*.json snapshots at the repo
#      root (EDM_BENCH_SCALE=0.2, the scale every prior snapshot used).
#
# Usage:
#   tools/rebaseline.sh [--build-dir <dir>] [--modes legacy,wire]
#                       [--skip-bench]
#
#   --build-dir   CMake build tree holding the binaries (default: build)
#   --modes       which baseline mode set to refresh (default: all).
#                   legacy     kGoldenFig6 kGoldenFig8a kGoldenFig8b
#                              kGoldenClusterSweep
#                   wire       kGoldenFig8aWire kGoldenClusterSweepWire
#                              kGoldenChunkSweepWire
#                   leafspine  kGoldenLeafSpine
#                   fairshare  kGoldenFairShare
#   --skip-bench  leave the BENCH_*.json snapshots alone
#
# Also available as a build target: cmake --build build -t rebaseline

set -euo pipefail

BUILD_DIR=build
MODES=legacy,wire,leafspine,fairshare
SKIP_BENCH=0
while [[ $# -gt 0 ]]; do
    case "$1" in
      --build-dir) BUILD_DIR=$2; shift 2 ;;
      --modes) MODES=$2; shift 2 ;;
      --skip-bench) SKIP_BENCH=1; shift ;;
      *)
        echo "usage: $0 [--build-dir <dir>]" \
             "[--modes legacy,wire,leafspine,fairshare] [--skip-bench]" >&2
        exit 2 ;;
    esac
done

ROOT=$(cd "$(dirname "$0")/.." && pwd)
cd "$ROOT"
INC=tests/golden_figs_values.inc

# Arrays belonging to each mode set.
LEGACY_ARRAYS="kGoldenFig6 kGoldenFig8a kGoldenFig8b kGoldenClusterSweep"
WIRE_ARRAYS="kGoldenFig8aWire kGoldenClusterSweepWire kGoldenChunkSweepWire"
LEAFSPINE_ARRAYS="kGoldenLeafSpine"
FAIRSHARE_ARRAYS="kGoldenFairShare"
SELECTED=""
case ",$MODES," in *,legacy,*) SELECTED="$SELECTED $LEGACY_ARRAYS" ;; esac
case ",$MODES," in *,wire,*) SELECTED="$SELECTED $WIRE_ARRAYS" ;; esac
case ",$MODES," in
  *,leafspine,*) SELECTED="$SELECTED $LEAFSPINE_ARRAYS" ;;
esac
case ",$MODES," in
  *,fairshare,*) SELECTED="$SELECTED $FAIRSHARE_ARRAYS" ;;
esac
if [[ -z "$SELECTED" ]]; then
    echo "rebaseline: no known mode in --modes '$MODES'" >&2
    exit 2
fi

echo "== rebaseline: building test_golden_figs in $BUILD_DIR =="
cmake --build "$BUILD_DIR" -j --target test_golden_figs > /dev/null

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
cp "$INC" "$TMP/old.inc"

echo "== rebaseline: regenerating golden arrays (EDM_GOLDEN_REGEN=1) =="
EDM_GOLDEN_REGEN=1 "$BUILD_DIR/test_golden_figs" > "$TMP/regen.out"

# Extract the printed `constexpr double kName[] = { ... };` tables.
awk '/^constexpr double k[A-Za-z0-9]+\[\] = \{$/,/^\};$/' \
    "$TMP/regen.out" > "$TMP/new_arrays.inc"

# Assemble the new .inc: selected arrays from the regen output, the
# rest carried over from the previous file, in canonical order.
emit_array() { # $1 = file, $2 = array name
    awk -v name="$2" \
        '$0 == "constexpr double " name "[] = {" {p = 1}
         p {print}
         p && $0 == "};" {exit}' "$1"
}

{
    cat <<'EOF'
// Golden per-point values. Legacy arrays: captured from the PR 1
// baseline (per-block fabric emission, pure 4-ary-heap event queue)
// and bit-frozen since. *Wire arrays: EDM schedules under
// EdmConfig::wire_charged_occupancy (exact 66-bit block line-time
// port charges, core/occupancy.hpp). kGoldenLeafSpine: the
// cluster-scale leaf-spine incast rows of scenarios/leaf_spine.edm
// (multi-tier topology, sharded scheduler, net/topology.hpp).
// kGoldenFairShare: both rows of scenarios/tenant_isolation.edm
// (multi-tenant fair-share arbitration, core/fair_share.hpp).
// Regenerate ONLY via the documented pipeline: tools/rebaseline.sh
// (docs/REBASELINE.md) — it emits the schedule-diff summary reviewers
// need.

EOF
    for name in $LEGACY_ARRAYS $WIRE_ARRAYS $LEAFSPINE_ARRAYS \
                $FAIRSHARE_ARRAYS; do
        case " $SELECTED " in
          *" $name "*) src="$TMP/new_arrays.inc" ;;
          *) src="$TMP/old.inc" ;;
        esac
        if ! emit_array "$src" "$name" | grep -q .; then
            echo "rebaseline: array $name missing from $src" >&2
            exit 1
        fi
        emit_array "$src" "$name"
    done
} > "$TMP/new.inc"
mv "$TMP/new.inc" "$INC"

echo
echo "== schedule-diff summary (old -> new $INC) =="
awk '
    /^constexpr double / {
        name = $3; sub(/\[\].*/, "", name); i = 0
        if (NR != FNR && !(name in seen)) {
            seen[name] = 1
            order[++norder] = name
        }
        next
    }
    /^\};/ { name = ""; next }
    name != "" {
        v = $1; sub(/,$/, "", v)
        if (NR == FNR) { old[name "," i] = v; oldn[name] = ++i }
        else           { new[name "," i] = v; newn[name] = ++i }
        next
    }
    END {
        printf "  %-24s %7s %8s %14s %12s\n",
               "array", "points", "changed", "max |delta|", "max rel"
        for (s = 1; s <= norder; ++s) {
            n = order[s]
            changed = 0; maxd = 0; maxr = 0
            for (i = 0; i < newn[n]; ++i) {
                o = old[n "," i] + 0; v = new[n "," i] + 0
                if (old[n "," i] == "" || o != v) {
                    ++changed
                    d = v - o; if (d < 0) d = -d
                    if (d > maxd) maxd = d
                    r = (o == 0) ? 1 : d / (o < 0 ? -o : o)
                    if (r > maxr) maxr = r
                }
            }
            printf "  %-24s %7d %8d %14.6g %11.2f%%\n",
                   n, newn[n], changed, maxd, maxr * 100
        }
    }
' "$TMP/old.inc" "$INC"

echo
echo "== rebaseline: verifying the new baselines pass =="
# The golden arrays are compiled in: rebuild before the proof run.
cmake --build "$BUILD_DIR" -j --target test_golden_figs > /dev/null
"$BUILD_DIR/test_golden_figs" > "$TMP/verify.out" ||
    { tail -40 "$TMP/verify.out"; exit 1; }
tail -1 "$TMP/verify.out"

if [[ "$SKIP_BENCH" == 0 ]]; then
    echo
    echo "== rebaseline: refreshing quick-scale BENCH_*.json =="
    cmake --build "$BUILD_DIR" -j --target bench_event_queue \
        bench_fabric_hotpath > /dev/null
    EDM_BENCH_SCALE=0.2 "$BUILD_DIR/bench_event_queue" \
        --json BENCH_event_queue.json > /dev/null
    EDM_BENCH_SCALE=0.2 "$BUILD_DIR/bench_fabric_hotpath" \
        --json BENCH_fabric_hotpath.json > /dev/null
    echo "   wrote BENCH_event_queue.json BENCH_fabric_hotpath.json"
fi

echo
echo "rebaseline complete. Review the diff summary above and follow the"
echo "docs/REBASELINE.md checklist before committing $INC."
