/**
 * @file
 * Offline query tool for fabric event logs (docs/EVENT_LOG.md).
 *
 * The log answers scheduling forensics without rerunning the sim:
 *
 *   edm_trace dump    <file> [filters]   every record, one line each
 *   edm_trace summary <file> [filters]   per-flow lifecycle summaries
 *   edm_trace parked  <file> [--min-ns N] [filters]
 *                                        park->drain/drop pairs with
 *                                        latency and outcome — "which
 *                                        flows had grants parked longer
 *                                        than N ns, and why"
 *   edm_trace histo   <file> [filters]   wasted-grant reasons and
 *                                        park-latency histogram
 *   edm_trace faults  <file> [filters]   per-link fault episodes —
 *                                        inject -> disable -> repair
 *                                        pairing with phase latencies,
 *                                        plus retry/abandon and switch
 *                                        fail/failback counts
 *
 * Filters: --type <name> --port N --src N --dst N --id N --response
 *          --switch N          (leaf switch id; multi-tier topologies)
 *          --pool N            (fair-share pool id; tenanted runs)
 *          --from NS --to NS   (times in simulation nanoseconds)
 *
 * Leaf-spine logs (docs/TOPOLOGY.md) stamp each record with its switch
 * id and carry per-tier occupancy charges as tier-charge records;
 * `summary` rolls those up into a per-switch, per-tier table.
 *
 * Fair-share logs (docs/FAIR_SHARE.md) stamp grant/ledger records with
 * the owning pool (`aux` = pool id + 1); `summary` rolls those up into
 * a per-pool table: grants, bytes, achieved Gbps, limit deferrals,
 * priority bypasses and LedgerOpen->LedgerRetire completion p50/p99.
 */

#include <algorithm>
#include <array>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "common/stats.hpp"
#include "core/occupancy.hpp"
#include "trace/event_log.hpp"

namespace {

using namespace edm;
using trace::Detail;
using trace::EventType;
using trace::Record;

struct Filter
{
    int type = -1; ///< EventType value, -1 = any
    long port = -1;
    long src = -1;
    long dst = -1;
    long id = -1;
    long sw = -1; ///< leaf switch id (record field `sw`)
    long pool = -1; ///< fair-share pool id (record field `aux` - 1)
    bool response_only = false;
    double from_ns = -1;
    double to_ns = -1;

    bool
    pass(const Record &r) const
    {
        if (type >= 0 && r.type != type)
            return false;
        if (sw >= 0 && r.sw != sw)
            return false;
        if (port >= 0 && r.port != port)
            return false;
        if (src >= 0 && r.src != src)
            return false;
        if (dst >= 0 && r.dst != dst)
            return false;
        if (id >= 0 && r.id != id)
            return false;
        if (pool >= 0 &&
            r.aux != static_cast<std::uint32_t>(pool) + 1)
            return false;
        if (response_only && !r.response())
            return false;
        const double ns = toNs(r.at);
        if (from_ns >= 0 && ns < from_ns)
            return false;
        if (to_ns >= 0 && ns > to_ns)
            return false;
        return true;
    }
};

int
typeFromName(const std::string &name)
{
    for (int t = 0; t <= trace::kMaxEventType; ++t)
        if (name == trace::toString(static_cast<EventType>(t)))
            return t;
    return -1;
}

using FlowKey = std::tuple<std::uint16_t, std::uint16_t, std::uint8_t,
                           bool>;

std::string
flowName(const FlowKey &k)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%u->%u id %u %s",
                  static_cast<unsigned>(std::get<0>(k)),
                  static_cast<unsigned>(std::get<1>(k)),
                  static_cast<unsigned>(std::get<2>(k)),
                  std::get<3>(k) ? "rsp" : "req");
    return buf;
}

FlowKey
flowOf(const Record &r)
{
    return FlowKey{r.src, r.dst, r.id, r.response()};
}

void
dumpRecord(const Record &r)
{
    // tier-charge records name their link tier; everything else shows
    // the owning switch id (0 on single-switch fabrics). Tenanted runs
    // stamp grant/ledger records with their fair-share pool.
    char extra[32] = "";
    if (r.eventType() == EventType::TierCharge)
        std::snprintf(extra, sizeof(extra), " %s",
                      core::toString(
                          static_cast<core::LinkTier>(r.tier)));
    else if (r.aux > 0)
        std::snprintf(extra, sizeof(extra), " pool %u",
                      static_cast<unsigned>(r.aux - 1));
    std::printf("%14.3f ns  sw %-3u port %-4u %-16s %-20s %u->%u id %-3u "
                "%s arg %" PRIu64 "%s\n",
                toNs(r.at), static_cast<unsigned>(r.sw),
                static_cast<unsigned>(r.port),
                trace::toString(r.eventType()),
                trace::toString(r.detailCode()),
                static_cast<unsigned>(r.src),
                static_cast<unsigned>(r.dst),
                static_cast<unsigned>(r.id),
                r.response() ? "rsp" : "req", r.arg, extra);
}

int
cmdDump(const std::vector<Record> &recs)
{
    for (const Record &r : recs)
        dumpRecord(r);
    std::printf("%zu records\n", recs.size());
    return 0;
}

/** Per-flow lifecycle rollup. */
struct FlowSummary
{
    std::uint64_t issued = 0, issued_bytes = 0;
    std::uint64_t parked = 0, drained = 0, dropped = 0;
    std::uint64_t ledger_open = 0, ledger_retire = 0, ledger_abort = 0;
    std::uint64_t stalls = 0;
    Picoseconds first = 0, last = 0;
    bool seen = false;

    void
    touch(Picoseconds at)
    {
        if (!seen) {
            first = at;
            seen = true;
        }
        last = at;
    }
};

int
cmdSummary(const std::vector<Record> &recs)
{
    std::map<FlowKey, FlowSummary> flows;
    for (const Record &r : recs) {
        const EventType t = r.eventType();
        switch (t) {
        case EventType::GrantIssued:
        case EventType::GrantParked:
        case EventType::GrantDrained:
        case EventType::GrantDropped:
        case EventType::LedgerOpen:
        case EventType::LedgerRetire:
        case EventType::LedgerAbort:
        case EventType::IdWrapStall:
            break;
        default:
            continue; // port-scoped events have no flow key
        }
        FlowSummary &f = flows[flowOf(r)];
        f.touch(r.at);
        switch (t) {
        case EventType::GrantIssued:
            ++f.issued;
            f.issued_bytes += r.arg;
            break;
        case EventType::GrantParked: ++f.parked; break;
        case EventType::GrantDrained: ++f.drained; break;
        case EventType::GrantDropped: ++f.dropped; break;
        case EventType::LedgerOpen: ++f.ledger_open; break;
        case EventType::LedgerRetire: ++f.ledger_retire; break;
        case EventType::LedgerAbort: ++f.ledger_abort; break;
        case EventType::IdWrapStall: ++f.stalls; break;
        default: break;
        }
    }
    std::printf("%-22s %7s %10s %7s %7s %7s %6s %6s %6s %6s %12s\n",
                "flow", "grants", "bytes", "parked", "drained", "dropped",
                "open", "retire", "abort", "stall", "span ns");
    for (const auto &kv : flows) {
        const FlowSummary &f = kv.second;
        std::printf("%-22s %7" PRIu64 " %10" PRIu64 " %7" PRIu64
                    " %7" PRIu64 " %7" PRIu64 " %6" PRIu64 " %6" PRIu64
                    " %6" PRIu64 " %6" PRIu64 " %12.1f\n",
                    flowName(kv.first).c_str(), f.issued, f.issued_bytes,
                    f.parked, f.drained, f.dropped, f.ledger_open,
                    f.ledger_retire, f.ledger_abort, f.stalls,
                    toNs(f.last - f.first));
    }
    std::printf("%zu flows\n", flows.size());

    // Per-switch, per-tier occupancy rollup (leaf-spine logs only:
    // single-switch fabrics emit no tier-charge records).
    std::map<std::uint8_t, std::array<std::uint64_t,
                                      core::kNumLinkTiers>> tiers;
    for (const Record &r : recs)
        if (r.eventType() == EventType::TierCharge &&
            r.tier < core::kNumLinkTiers)
            tiers[r.sw][r.tier] += r.arg;
    if (!tiers.empty()) {
        std::printf("\nper-tier occupancy charged (ns):\n");
        std::printf("%-8s %14s %14s %14s %14s\n", "switch",
                    "leaf-ingress", "trunk", "spine", "leaf-egress");
        for (const auto &kv : tiers) {
            auto ns = [&kv](core::LinkTier t) {
                return toNs(static_cast<Picoseconds>(
                    kv.second[static_cast<std::size_t>(t)]));
            };
            std::printf("%-8u %14.1f %14.1f %14.1f %14.1f\n",
                        static_cast<unsigned>(kv.first),
                        ns(core::LinkTier::LeafIngress),
                        ns(core::LinkTier::Trunk),
                        ns(core::LinkTier::Spine),
                        ns(core::LinkTier::LeafEgress));
        }
    }

    // Per-pool fair-share rollup (tenanted runs only: untenanted logs
    // leave `aux` zero on every record).
    struct PoolSummary
    {
        std::uint64_t grants = 0, bytes = 0;
        std::uint64_t deferred = 0, bypasses = 0;
        Picoseconds first = -1, last = 0;
        Samples complete_ns; ///< LedgerOpen -> LedgerRetire per flow
    };
    std::map<std::uint32_t, PoolSummary> pools; // key: aux = pool + 1
    std::map<FlowKey, Picoseconds> open_at;
    for (const Record &r : recs) {
        if (r.aux == 0)
            continue;
        PoolSummary &p = pools[r.aux];
        switch (r.eventType()) {
        case EventType::GrantIssued:
            ++p.grants;
            p.bytes += r.arg;
            if (p.first < 0)
                p.first = r.at;
            p.last = r.at;
            break;
        case EventType::GrantDeferredByLimit: ++p.deferred; break;
        case EventType::PriorityBypass: ++p.bypasses; break;
        case EventType::LedgerOpen: open_at[flowOf(r)] = r.at; break;
        case EventType::LedgerRetire: {
            const auto it = open_at.find(flowOf(r));
            if (it != open_at.end()) {
                p.complete_ns.add(toNs(r.at - it->second));
                open_at.erase(it);
            }
            break;
        }
        case EventType::LedgerAbort: open_at.erase(flowOf(r)); break;
        default: break;
        }
    }
    if (!pools.empty()) {
        std::printf("\nper-pool fair-share rollup:\n");
        std::printf("%-6s %7s %10s %8s %9s %8s %12s %12s\n", "pool",
                    "grants", "bytes", "Gbps", "deferred", "bypass",
                    "complete p50", "complete p99");
        for (const auto &kv : pools) {
            const PoolSummary &p = kv.second;
            const double span_ns =
                p.first >= 0 ? toNs(p.last - p.first) : 0.0;
            // bits per ns == Gbps, over the pool's active grant span.
            const double gbps = span_ns > 0
                ? static_cast<double>(p.bytes) * 8.0 / span_ns
                : 0.0;
            std::printf("%-6u %7" PRIu64 " %10" PRIu64 " %8.2f %9" PRIu64
                        " %8" PRIu64 " %12.1f %12.1f\n",
                        static_cast<unsigned>(kv.first - 1), p.grants,
                        p.bytes, gbps, p.deferred, p.bypasses,
                        p.complete_ns.count()
                            ? p.complete_ns.percentile(50) : 0.0,
                        p.complete_ns.count()
                            ? p.complete_ns.percentile(99) : 0.0);
        }
    }
    return 0;
}

/** One parked grant resolved (or not) by a later drain/drop. */
struct ParkSpan
{
    FlowKey flow;
    Picoseconds parked_at = 0;
    Picoseconds resolved_at = 0;
    bool resolved = false;
    bool drained = false;
    Detail reason = Detail::None;
};

std::vector<ParkSpan>
parkSpans(const std::vector<Record> &recs)
{
    // Parked grants drain FIFO per flow (HostStack keeps them in a
    // deque), so matching park->resolution in order is exact.
    std::map<FlowKey, std::deque<std::size_t>> open;
    std::vector<ParkSpan> spans;
    for (const Record &r : recs) {
        const EventType t = r.eventType();
        if (t == EventType::GrantParked) {
            ParkSpan s;
            s.flow = flowOf(r);
            s.parked_at = r.at;
            open[s.flow].push_back(spans.size());
            spans.push_back(s);
            continue;
        }
        if (t != EventType::GrantDrained && t != EventType::GrantDropped)
            continue;
        auto it = open.find(flowOf(r));
        if (it == open.end() || it->second.empty())
            continue; // drop of a never-parked grant (unknown, stale...)
        ParkSpan &s = spans[it->second.front()];
        it->second.pop_front();
        s.resolved = true;
        s.resolved_at = r.at;
        s.drained = t == EventType::GrantDrained;
        s.reason = r.detailCode();
    }
    return spans;
}

int
cmdParked(const std::vector<Record> &recs, double min_ns)
{
    const auto spans = parkSpans(recs);
    std::size_t shown = 0;
    std::printf("%-22s %14s %12s %-10s %s\n", "flow", "parked at ns",
                "parked ns", "outcome", "why");
    for (const ParkSpan &s : spans) {
        const double ns =
            s.resolved ? toNs(s.resolved_at - s.parked_at) : -1;
        if (s.resolved && ns < min_ns)
            continue;
        ++shown;
        if (s.resolved)
            std::printf("%-22s %14.3f %12.1f %-10s %s\n",
                        flowName(s.flow).c_str(), toNs(s.parked_at), ns,
                        s.drained ? "drained" : "dropped",
                        s.drained ? "-" : trace::toString(s.reason));
        else
            std::printf("%-22s %14.3f %12s %-10s %s\n",
                        flowName(s.flow).c_str(), toNs(s.parked_at),
                        "never", "unresolved",
                        "still parked at end of log");
    }
    std::printf("%zu of %zu parked grants shown (min %.0f ns)\n", shown,
                spans.size(), min_ns);
    return 0;
}

int
cmdHisto(const std::vector<Record> &recs)
{
    // Wasted grants by reason.
    std::map<std::uint8_t, std::uint64_t> drops;
    for (const Record &r : recs)
        if (r.eventType() == EventType::GrantDropped)
            ++drops[r.detail];
    std::printf("wasted grants by reason:\n");
    if (drops.empty())
        std::printf("  (none)\n");
    for (const auto &kv : drops)
        std::printf("  %-20s %8" PRIu64 "\n",
                    trace::toString(static_cast<Detail>(kv.first)),
                    kv.second);

    // Park latency histogram.
    static const double kEdges[] = {100, 1e3, 1e4, 1e5, 1e6};
    static const char *kNames[] = {"< 100 ns",  "< 1 us",   "< 10 us",
                                   "< 100 us",  "< 1 ms",   ">= 1 ms"};
    std::uint64_t buckets[7] = {0};
    std::uint64_t unresolved = 0;
    for (const ParkSpan &s : parkSpans(recs)) {
        if (!s.resolved) {
            ++unresolved;
            continue;
        }
        const double ns = toNs(s.resolved_at - s.parked_at);
        std::size_t b = 0;
        while (b < 5 && ns >= kEdges[b])
            ++b;
        ++buckets[b];
    }
    std::printf("\npark latency:\n");
    for (std::size_t b = 0; b < 6; ++b)
        std::printf("  %-10s %8" PRIu64 "\n", kNames[b], buckets[b]);
    std::printf("  %-10s %8" PRIu64 "\n", "unresolved", unresolved);
    return 0;
}

/**
 * One link's inject -> disable -> repair lifecycle. A repair closes the
 * episode; corruption landing while the link is already down folds into
 * the open episode (its blocks are dropped before the corruption
 * check, so it cannot advance the phases).
 */
struct FaultEpisode
{
    std::uint16_t port = 0;
    Picoseconds injected_at = -1;
    Picoseconds disabled_at = -1;
    Picoseconds repaired_at = -1;
};

void
printEpisode(const FaultEpisode &e)
{
    char disable[24] = "-", repair[24] = "-";
    if (e.injected_at >= 0 && e.disabled_at >= 0)
        std::snprintf(disable, sizeof(disable), "%.1f",
                      toNs(e.disabled_at - e.injected_at));
    if (e.disabled_at >= 0 && e.repaired_at >= 0)
        std::snprintf(repair, sizeof(repair), "%.1f",
                      toNs(e.repaired_at - e.disabled_at));
    auto stamp = [](char *buf, std::size_t n, Picoseconds t) {
        if (t >= 0)
            std::snprintf(buf, n, "%.3f", toNs(t));
        else
            std::snprintf(buf, n, "-");
    };
    char inj[24], dis[24], rep[24];
    stamp(inj, sizeof(inj), e.injected_at);
    stamp(dis, sizeof(dis), e.disabled_at);
    stamp(rep, sizeof(rep), e.repaired_at);
    std::printf("%-6u %14s %14s %14s %14s %14s\n",
                static_cast<unsigned>(e.port), inj, dis, rep, disable,
                repair);
}

int
cmdFaults(const std::vector<Record> &recs)
{
    std::map<std::uint16_t, FaultEpisode> open;
    std::vector<FaultEpisode> episodes;
    std::uint64_t injections = 0, retries = 0, abandoned = 0;
    std::uint64_t switch_fails = 0, switch_failbacks = 0;
    for (const Record &r : recs) {
        const EventType t = r.eventType();
        const Detail d = r.detailCode();
        if (t == EventType::FaultInject) {
            if (d == Detail::SwitchFail) {
                ++switch_fails;
                continue;
            }
            ++injections;
            FaultEpisode &e = open[r.port];
            e.port = r.port;
            if (e.injected_at < 0)
                e.injected_at = r.at;
            continue;
        }
        if (t != EventType::FaultRecover)
            continue;
        switch (d) {
        case Detail::LinkDisabled: {
            FaultEpisode &e = open[r.port];
            e.port = r.port;
            if (e.disabled_at < 0)
                e.disabled_at = r.at;
            break;
        }
        case Detail::LinkRepaired: {
            FaultEpisode &e = open[r.port];
            e.port = r.port;
            e.repaired_at = r.at;
            episodes.push_back(e);
            open.erase(r.port);
            break;
        }
        case Detail::ReadRetry: ++retries; break;
        case Detail::ReadAbandoned: ++abandoned; break;
        case Detail::SwitchFailback: ++switch_failbacks; break;
        default: break;
        }
    }

    std::printf("%-6s %14s %14s %14s %14s %14s\n", "port",
                "injected ns", "disabled ns", "repaired ns",
                "tt_disable ns", "tt_repair ns");
    for (const FaultEpisode &e : episodes)
        printEpisode(e);
    for (const auto &kv : open)
        printEpisode(kv.second); // unresolved at end of log
    std::printf("%zu fault episodes (%zu unresolved), %" PRIu64
                " corruption bursts\n",
                episodes.size() + open.size(), open.size(), injections);
    std::printf("host recovery: %" PRIu64 " read retries, %" PRIu64
                " reads abandoned\n",
                retries, abandoned);
    std::printf("replicated: %" PRIu64 " switch failures, %" PRIu64
                " failbacks\n",
                switch_fails, switch_failbacks);
    return 0;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: edm_trace <dump|summary|parked|histo|faults> <file> "
        "[--type NAME] [--port N]\n"
        "                 [--src N] [--dst N] [--id N] [--switch N] "
        "[--pool N] [--response]\n"
        "                 [--from NS] [--to NS] [--min-ns N]\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    const std::string cmd = argv[1];
    const std::string path = argv[2];
    Filter filter;
    double min_ns = 0;
    for (int i = 3; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (a == "--response") {
            filter.response_only = true;
            continue;
        }
        const char *v = next();
        if (!v)
            return usage();
        if (a == "--type") {
            filter.type = typeFromName(v);
            if (filter.type < 0) {
                std::fprintf(stderr, "unknown event type '%s'\n", v);
                return 2;
            }
        } else if (a == "--port") {
            filter.port = std::atol(v);
        } else if (a == "--src") {
            filter.src = std::atol(v);
        } else if (a == "--dst") {
            filter.dst = std::atol(v);
        } else if (a == "--id") {
            filter.id = std::atol(v);
        } else if (a == "--switch") {
            filter.sw = std::atol(v);
        } else if (a == "--pool") {
            filter.pool = std::atol(v);
        } else if (a == "--from") {
            filter.from_ns = std::atof(v);
        } else if (a == "--to") {
            filter.to_ns = std::atof(v);
        } else if (a == "--min-ns") {
            min_ns = std::atof(v);
        } else {
            return usage();
        }
    }

    trace::LogReader reader;
    if (!reader.open(path)) {
        std::fprintf(stderr, "%s: not a readable EDMTRACE file\n",
                     path.c_str());
        return 1;
    }
    std::vector<Record> recs;
    Record r;
    while (reader.next(r))
        if (filter.pass(r))
            recs.push_back(r);

    if (cmd == "dump")
        return cmdDump(recs);
    if (cmd == "summary")
        return cmdSummary(recs);
    if (cmd == "parked")
        return cmdParked(recs, min_ns);
    if (cmd == "histo")
        return cmdHisto(recs);
    if (cmd == "faults")
        return cmdFaults(recs);
    return usage();
}
