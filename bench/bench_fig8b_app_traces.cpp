/**
 * @file
 * Reproduces **Figure 8b**: average message completion time (MCT),
 * normalized by the ideal (alone-in-the-network) completion time, for
 * traces modelled after five disaggregated applications — Hadoop sort,
 * Spark sort, Spark SQL, GraphLab filtering and Memcached — across all
 * seven fabrics at load 0.8 with a 50/50 read/write mix.
 *
 * Expected shape: EDM within ~1.2–1.4× ideal and the best of the seven;
 * IRD and pFabric close behind (SRPT helps heavy tails); PFC/DCTCP/CXL
 * several times worse (FIFO + pause/credit head-of-line blocking);
 * Fastpass the worst. Includes the SRPT-vs-FCFS priority ablation.
 */

#include <cstdio>

#include "bench_util.hpp"
#include "workload/traces.hpp"

using namespace edm;
using namespace edm::bench;

namespace {

constexpr std::uint64_t kMessages = 40000;
constexpr double kLoad = 0.8;

} // namespace

int
main()
{
    std::printf("=== Figure 8b: normalized avg MCT on disaggregated "
                "application traces (load %.1f, 50/50 R/W) ===\n",
                kLoad);
    std::printf("(paper: EDM 1.2-1.4x ideal; CXL up to 8x worse than "
                "EDM; Fastpass worst)\n\n");
    std::printf("  %-22s", "trace");
    for (auto f : allFabrics())
        std::printf(" %9s", fabricName(f));
    std::printf("\n");

    std::vector<std::vector<double>> p99_rows;
    for (auto trace : workload::allTraces()) {
        const Cdf cdf = workload::traceSizeCdf(trace);
        std::printf("  %-22s", workload::traceName(trace).c_str());
        std::vector<double> p99_row;
        for (auto f : allFabrics()) {
            const auto r = runPoint(f, kLoad, 0.5, kMessages, cdf);
            std::printf(" %9.3f", r.norm_mean);
            p99_row.push_back(r.norm_p99);
        }
        p99_rows.push_back(std::move(p99_row));
        std::printf("\n");
    }

    // The paper also reports 99th-percentile MCT (its PCT99 panel).
    std::printf("\n--- normalized p99 MCT ---\n");
    std::printf("  %-22s", "trace");
    for (auto f : allFabrics())
        std::printf(" %9s", fabricName(f));
    std::printf("\n");
    std::size_t row = 0;
    for (auto trace : workload::allTraces()) {
        std::printf("  %-22s", workload::traceName(trace).c_str());
        for (double v : p99_rows[row])
            std::printf(" %9.1f", v);
        ++row;
        std::printf("\n");
    }

    std::printf("\n--- EDM priority-policy ablation (heavy-tailed traces"
                " are where SRPT matters) ---\n");
    std::printf("  %-22s %9s %9s\n", "trace", "SRPT", "FCFS");
    for (auto trace : workload::allTraces()) {
        const Cdf cdf = workload::traceSizeCdf(trace);
        const auto srpt = runPoint(Fabric::Edm, kLoad, 0.5, kMessages,
                                   cdf, 42, core::Priority::Srpt);
        const auto fcfs = runPoint(Fabric::Edm, kLoad, 0.5, kMessages,
                                   cdf, 42, core::Priority::Fcfs);
        std::printf("  %-22s %9.3f %9.3f\n",
                    workload::traceName(trace).c_str(), srpt.norm_mean,
                    fcfs.norm_mean);
    }
    return 0;
}
