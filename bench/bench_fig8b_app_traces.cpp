/**
 * @file
 * Reproduces **Figure 8b**: average message completion time (MCT),
 * normalized by the ideal (alone-in-the-network) completion time, for
 * traces modelled after five disaggregated applications — Hadoop sort,
 * Spark sort, Spark SQL, GraphLab filtering and Memcached — across all
 * seven fabrics at load 0.8 with a 50/50 read/write mix.
 *
 * Expected shape: EDM within ~1.2–1.4× ideal and the best of the seven;
 * IRD and pFabric close behind (SRPT helps heavy tails); PFC/DCTCP/CXL
 * several times worse (FIFO + pause/credit head-of-line blocking);
 * Fastpass the worst. Includes the SRPT-vs-FCFS priority ablation.
 *
 * All (trace, fabric) points execute in parallel via runPointsParallel;
 * per-point seeds are fixed, so numbers match a serial run exactly.
 */

#include <cstdio>

#include "bench_util.hpp"
#include "workload/traces.hpp"

using namespace edm;
using namespace edm::bench;

namespace {

constexpr std::uint64_t kMessages = 40000;
constexpr double kLoad = 0.8;

} // namespace

int
main()
{
    std::printf("=== Figure 8b: normalized avg MCT on disaggregated "
                "application traces (load %.1f, 50/50 R/W) ===\n",
                kLoad);
    std::printf("(paper: EDM 1.2-1.4x ideal; CXL up to 8x worse than "
                "EDM; Fastpass worst)\n\n");

    // Main grid: every (trace, fabric) point, trace-major.
    std::vector<PointSpec> points;
    for (auto trace : workload::allTraces()) {
        const Cdf cdf = workload::traceSizeCdf(trace);
        for (auto f : allFabrics()) {
            PointSpec p;
            p.fabric = f;
            p.load = kLoad;
            p.write_fraction = 0.5;
            p.messages = kMessages;
            p.size_cdf = cdf;
            points.push_back(p);
        }
    }
    const auto results = runPointsParallel(points);

    std::printf("  %-22s", "trace");
    for (auto f : allFabrics())
        std::printf(" %9s", fabricName(f));
    std::printf("\n");
    std::size_t i = 0;
    for (auto trace : workload::allTraces()) {
        std::printf("  %-22s", workload::traceName(trace).c_str());
        for (auto f : allFabrics()) {
            (void)f;
            std::printf(" %9.3f", results[i++].norm_mean);
        }
        std::printf("\n");
    }

    // The paper also reports 99th-percentile MCT (its PCT99 panel).
    std::printf("\n--- normalized p99 MCT ---\n");
    std::printf("  %-22s", "trace");
    for (auto f : allFabrics())
        std::printf(" %9s", fabricName(f));
    std::printf("\n");
    i = 0;
    for (auto trace : workload::allTraces()) {
        std::printf("  %-22s", workload::traceName(trace).c_str());
        for (auto f : allFabrics()) {
            (void)f;
            std::printf(" %9.1f", results[i++].norm_p99);
        }
        std::printf("\n");
    }

    std::printf("\n--- EDM priority-policy ablation (heavy-tailed traces"
                " are where SRPT matters) ---\n");
    std::vector<PointSpec> abl;
    for (auto trace : workload::allTraces()) {
        for (auto prio : {core::Priority::Srpt, core::Priority::Fcfs}) {
            PointSpec p;
            p.load = kLoad;
            p.write_fraction = 0.5;
            p.messages = kMessages;
            p.size_cdf = workload::traceSizeCdf(trace);
            p.edm_priority = prio;
            abl.push_back(p);
        }
    }
    const auto abl_results = runPointsParallel(abl);

    std::printf("  %-22s %9s %9s\n", "trace", "SRPT", "FCFS");
    i = 0;
    for (auto trace : workload::allTraces()) {
        const double srpt = abl_results[i++].norm_mean;
        const double fcfs = abl_results[i++].norm_mean;
        std::printf("  %-22s %9.3f %9.3f\n",
                    workload::traceName(trace).c_str(), srpt, fcfs);
    }
    return 0;
}
