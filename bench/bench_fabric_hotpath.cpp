/**
 * @file
 * Fabric hot-path microbenchmark: end-to-end blocks/second through the
 * cycle-level fabric across three engine generations:
 *
 *   pr1  one event per block per hop, heap-only event queue
 *   pr2  memory block trains + timing-wheel queue (frames per-block)
 *   pr3  payload-agnostic trains: frame bursts train too, and the
 *        egress path runs on pooled allocation-free storage
 *   pr8  partitioned conservative-PDES engine: hosts and switch split
 *        across per-partition event queues advancing in lock-step
 *        lookahead windows (EdmConfig::fabric_workers)
 *
 * Four closed-loop workloads on an 8-node fabric (7 compute + 1
 * memory): bulk 2 KB reads, streaming 2 KB writes, a mixed read/write
 * load with MTU-frame interference, and a frames-heavy load where L2
 * floods dominate the line. Every configuration produces bit-identical
 * simulations — test_block_train / test_frame_train prove it, the
 * cross-check here re-asserts it each run — so the blocks/sec ratios
 * are pure simulator speedup.
 *
 * The pr8 section runs a pairwise 24-node workload (12 co-partitioned
 * node pairs spread over 8 host partition groups) at 1/2/4/8 fabric
 * workers, re-asserts bit-identical results per worker count
 * (test_parallel_engine.cpp owns the full determinism proof), and
 * reports speedup over the single-thread pr3 referee. Wall-clock
 * scaling obviously needs the cores: the checked-in JSON is produced
 * by CI runners, a 1-vCPU container will show ~1x.
 *
 * The chunk-sweep section measures the PR 5 follow-up — grant chunk
 * size under wire-charged occupancy (scenarios/chunk_sweep_wire.edm
 * carries the declarative form, kGoldenChunkSweepWire the baseline).
 *
 * The leaf-spine section measures the PR 9 multi-tier fabric — a
 * 32-host four-leaf incast under the sharded scheduler with the
 * partition map auto-derived from the topology, asserting the workers
 * >= 1 schedule bit-exact against the fabric_workers = 0 referee
 * (train cap pinned; docs/TOPOLOGY.md).
 *
 * The fair-share section measures the PR 10 multi-tenant arbitration —
 * the tenant_isolation pool layout on a 17-node incast with the
 * hierarchical pool tree off vs on, so the blocks/sec ratio is the
 * whole per-grant cost of isolation (docs/FAIR_SHARE.md).
 *
 * Run:   ./build/bench_fabric_hotpath [ops-per-node] [--json <path>]
 */

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/fabric.hpp"
#include "mac/frame.hpp"

namespace {

using namespace edm;
using namespace edm::core;

constexpr std::size_t kNodes = 8;
constexpr Bytes kOpBytes = 2048;

struct RunStats
{
    double wall_s = 0;
    std::uint64_t blocks = 0; ///< mem + frame blocks handled (all hops)
    std::uint64_t events = 0;
    std::uint64_t completions = 0;
    std::uint64_t frames = 0;
    edm::Picoseconds end_time = 0;
    double read_p99_ns = 0; ///< chunk-sweep rows only
};

enum class Load
{
    BulkRead,
    WriteStream,
    MixedFrames,
    FramesHeavy,
    Incast,
};

const char *
loadName(Load l)
{
    switch (l) {
      case Load::BulkRead: return "bulk-read";
      case Load::WriteStream: return "write-stream";
      case Load::MixedFrames: return "mixed+frames";
      case Load::FramesHeavy: return "frames-heavy";
      case Load::Incast: return "incast-strict";
    }
    return "?";
}

/** One engine generation = (memory trains, frame trains, wheel). */
struct Engine
{
    const char *name;
    std::size_t max_train;
    std::size_t max_frame_train;
    bool wheel;
};

constexpr Engine kEngines[] = {
    {"pr1-baseline", 1, 1, false},
    {"pr2-trains+wheel", 64, 1, true},
    {"pr3-frame-trains", 64, 64, true},
};

RunStats
run(Load load, const Engine &eng, std::uint64_t ops_per_node)
{
    Simulation sim;
    if (!eng.wheel)
        sim.events().disableWheelForBenchmarking();
    EdmConfig cfg;
    cfg.num_nodes = kNodes;
    cfg.link_rate = Gbps{25.0};
    cfg.max_train_blocks = eng.max_train;
    cfg.max_frame_train_blocks = eng.max_frame_train;
    // The incast row runs the over-grant regime (grants overtaking
    // their forwarded requests through the contested egress); strict
    // accounting keeps every closed loop alive so the engines stay
    // comparable, and the row doubles as a ledger hot-path measurement.
    cfg.strict_grant_accounting = load == Load::Incast;
    const NodeId mem = kNodes - 1;
    CycleFabric fab(cfg, sim, {mem});
    fab.host(mem).store()->write(0x10000,
                                 std::vector<std::uint8_t>(kOpBytes, 0x5A));

    mac::Frame mtu;
    mtu.payload.assign(1400, 0x7B);
    const auto mtu_bytes = mac::serialize(mtu);

    RunStats rs;
    // One closed loop per compute node: the next op posts when the
    // previous completes, keeping every uplink saturated.
    std::vector<std::uint64_t> remaining(kNodes - 1, ops_per_node);
    std::function<void(NodeId)> issue = [&](NodeId n) {
        if (remaining[n] == 0)
            return;
        --remaining[n];
        if (load == Load::FramesHeavy) {
            // Two MTU frames per 64 B read: the line is frame-dominated
            // (flooding multiplies every frame by the other 7 ports)
            // while the read keeps a closed completion loop alive.
            fab.injectFrame(n, mtu_bytes);
            fab.injectFrame(n, mtu_bytes);
            fab.read(n, mem, 0x10000, 64,
                     [&issue, n](std::vector<std::uint8_t>, Picoseconds,
                                 bool) { issue(n); });
            return;
        }
        if (load == Load::Incast) {
            // Short mixed ops maximize grant churn per byte: 7 senders'
            // RREQ forwards fight write data for the memory node's
            // downlink, so /G/s routinely outrun their requests.
            if ((remaining[n] % 3) == 0) {
                fab.write(n, mem,
                          0x20000 +
                              static_cast<std::uint64_t>(n) * 0x10000,
                          std::vector<std::uint8_t>(
                              700, static_cast<std::uint8_t>(n)),
                          [&issue, n](Picoseconds) { issue(n); });
            } else {
                fab.read(n, mem, 0x10000, 900,
                         [&issue, n](std::vector<std::uint8_t>,
                                     Picoseconds, bool) { issue(n); });
            }
            return;
        }
        const bool write_op = load == Load::WriteStream ||
            (load == Load::MixedFrames && (remaining[n] & 1));
        if (write_op) {
            fab.write(n, mem,
                      0x20000 + static_cast<std::uint64_t>(n) * 0x10000,
                      std::vector<std::uint8_t>(kOpBytes,
                                                static_cast<std::uint8_t>(n)),
                      [&issue, n](Picoseconds) { issue(n); });
        } else {
            fab.read(n, mem, 0x10000, kOpBytes,
                     [&issue, n](std::vector<std::uint8_t>, Picoseconds,
                                 bool) { issue(n); });
        }
        if (load == Load::MixedFrames && (remaining[n] % 4) == 0)
            fab.injectFrame(n, mtu_bytes);
    };

    const auto t0 = std::chrono::steady_clock::now();
    for (NodeId n = 0; n < kNodes - 1; ++n)
        issue(n);
    sim.run();
    rs.wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    for (NodeId n = 0; n < kNodes; ++n) {
        const auto &st = fab.host(n).stats();
        rs.blocks += st.mem_blocks_sent + st.mem_blocks_received;
        rs.completions += st.reads_completed + st.writes_completed;
        rs.frames += st.frames_received;
        // Frame blocks cross the line too: count emitted frame slots on
        // both hops (uplink host mux + downlink egress mux).
        rs.blocks += fab.host(n).mux().frameSlots();
        rs.blocks += fab.switchStack().egressMux(n).frameSlots();
    }
    rs.events = sim.events().executed();
    rs.end_time = sim.now();
    return rs;
}

/**
 * Pairwise closed-loop workload for the parallel engine: 24 nodes as
 * 12 co-partitioned pairs spread across 8 host partition groups (plus
 * the switch partition). Even nodes read 2 KB from their partner, odd
 * nodes stream 2 KB writes back; every block still crosses the switch
 * partition both ways, so the mailbox handoff is on the hot path.
 */
RunStats
runParallel(int workers, std::uint64_t ops_per_node)
{
    constexpr std::size_t kParNodes = 24;
    Simulation sim;
    EdmConfig cfg;
    cfg.num_nodes = kParNodes;
    cfg.link_rate = Gbps{25.0};
    cfg.fabric_workers = workers;
    if (workers > 0) {
        cfg.fabric_partition_map.resize(kParNodes);
        for (std::size_t n = 0; n < kParNodes; ++n)
            cfg.fabric_partition_map[n] =
                static_cast<std::uint16_t>(1 + (n / 2) % 8);
    }
    CycleFabric fab(cfg, sim);
    for (NodeId n = 0; n < kParNodes; ++n)
        fab.host(n).store()->write(
            0x10000, std::vector<std::uint8_t>(kOpBytes, 0x5A));

    RunStats rs;
    std::vector<std::uint64_t> remaining(kParNodes, ops_per_node);
    std::function<void(NodeId)> issue = [&](NodeId n) {
        if (remaining[n] == 0)
            return;
        --remaining[n];
        const NodeId partner = static_cast<NodeId>(n ^ 1u);
        if (n & 1) {
            fab.write(n, partner,
                      0x20000 + static_cast<std::uint64_t>(n) * 0x10000,
                      std::vector<std::uint8_t>(
                          kOpBytes, static_cast<std::uint8_t>(n)),
                      [&issue, n](Picoseconds) { issue(n); });
        } else {
            fab.read(n, partner, 0x10000, kOpBytes,
                     [&issue, n](std::vector<std::uint8_t>, Picoseconds,
                                 bool) { issue(n); });
        }
    };

    const auto t0 = std::chrono::steady_clock::now();
    for (NodeId n = 0; n < kParNodes; ++n)
        issue(n);
    fab.run();
    rs.wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    for (NodeId n = 0; n < kParNodes; ++n) {
        const auto &st = fab.host(n).stats();
        rs.blocks += st.mem_blocks_sent + st.mem_blocks_received;
        rs.completions += st.reads_completed + st.writes_completed;
    }
    rs.events = fab.eventsExecuted();
    rs.end_time = fab.endTime();
    return rs;
}

/**
 * Leaf-spine incast for the multi-tier fabric: 32 hosts over four
 * 8-host leaves, everyone hammering node 0 with short mixed ops, so
 * every leaf's trunk (requests, grants, streams, shard-coordination
 * notes) and the victim leaf's scheduler shard are the hot path. The
 * partition map is auto-derived from the topology (one per leaf); the
 * train cap is pinned at the engine's lookahead cap so the serial
 * referee batches identically and workers >= 1 must reproduce it
 * bit-exactly (asserted per row in main).
 */
RunStats
runLeafSpine(int workers, std::uint64_t ops_per_node)
{
    constexpr std::size_t kLsNodes = 32;
    Simulation sim;
    EdmConfig cfg;
    cfg.num_nodes = kLsNodes;
    cfg.link_rate = Gbps{25.0};
    cfg.strict_grant_accounting = true;
    cfg.fabric_workers = workers;
    cfg.topology.tiers = TopologySpec::Tiers::LeafSpine;
    cfg.topology.hosts_per_leaf = 8;
    cfg.topology.trunk_width = 4;
    cfg.topology.ecmp_seed = 7;
    cfg.max_train_blocks = 12;
    cfg.max_frame_train_blocks = 12;
    CycleFabric fab(cfg, sim);
    fab.host(0).store()->write(0x10000,
                               std::vector<std::uint8_t>(1024, 0x5A));

    RunStats rs;
    std::vector<std::uint64_t> remaining(kLsNodes, ops_per_node);
    remaining[0] = 0;
    std::function<void(NodeId)> issue = [&](NodeId n) {
        if (remaining[n] == 0)
            return;
        --remaining[n];
        if ((remaining[n] % 3) == 0) {
            fab.write(n, 0,
                      0x20000 + static_cast<std::uint64_t>(n) * 0x10000,
                      std::vector<std::uint8_t>(
                          700, static_cast<std::uint8_t>(n)),
                      [&issue, n](Picoseconds) { issue(n); });
        } else {
            fab.read(n, 0, 0x10000, 900,
                     [&issue, n](std::vector<std::uint8_t>, Picoseconds,
                                 bool) { issue(n); });
        }
    };

    const auto t0 = std::chrono::steady_clock::now();
    for (NodeId n = 1; n < kLsNodes; ++n)
        issue(n);
    fab.run();
    rs.wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    for (NodeId n = 0; n < kLsNodes; ++n) {
        const auto &st = fab.host(n).stats();
        rs.blocks += st.mem_blocks_sent + st.mem_blocks_received;
        rs.completions += st.reads_completed + st.writes_completed;
    }
    rs.events = fab.eventsExecuted();
    rs.end_time = fab.endTime();
    return rs;
}

/**
 * Grant-chunk size under wire-charged occupancy (the PR 5 follow-up):
 * the 7-to-1 incast regime where the chunk size decides how coarsely
 * the scheduler meters the contested memory downlink.
 */
RunStats
runChunkSweep(Bytes chunk, std::uint64_t ops_per_node)
{
    Simulation sim;
    EdmConfig cfg;
    cfg.num_nodes = kNodes;
    cfg.link_rate = Gbps{25.0};
    cfg.strict_grant_accounting = true;
    cfg.wire_charged_occupancy = true;
    cfg.chunk_bytes = chunk;
    const NodeId mem = kNodes - 1;
    CycleFabric fab(cfg, sim, {mem});
    fab.host(mem).store()->write(0x10000,
                                 std::vector<std::uint8_t>(1024, 0x5A));

    RunStats rs;
    std::vector<std::uint64_t> remaining(kNodes - 1, ops_per_node);
    std::function<void(NodeId)> issue = [&](NodeId n) {
        if (remaining[n] == 0)
            return;
        --remaining[n];
        if ((remaining[n] % 3) == 0) {
            fab.write(n, mem,
                      0x20000 + static_cast<std::uint64_t>(n) * 0x10000,
                      std::vector<std::uint8_t>(
                          700, static_cast<std::uint8_t>(n)),
                      [&issue, n](Picoseconds) { issue(n); });
        } else {
            fab.read(n, mem, 0x10000, 900,
                     [&issue, n](std::vector<std::uint8_t>, Picoseconds,
                                 bool) { issue(n); });
        }
    };

    const auto t0 = std::chrono::steady_clock::now();
    for (NodeId n = 0; n < kNodes - 1; ++n)
        issue(n);
    sim.run();
    rs.wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    for (NodeId n = 0; n < kNodes; ++n) {
        const auto &st = fab.host(n).stats();
        rs.blocks += st.mem_blocks_sent + st.mem_blocks_received;
        rs.completions += st.reads_completed + st.writes_completed;
    }
    rs.events = sim.events().executed();
    rs.end_time = sim.now();
    const Samples &reads = fab.readLatency();
    rs.read_p99_ns = reads.count() ? reads.percentile(99) : 0.0;
    return rs;
}

/**
 * Fair-share arbitration overhead (PR 10): the tenant_isolation pool
 * layout (weighted bulk, rate-limited bulk, latency-sensitive) on a
 * 17-node incast, with the hierarchical pool tree off vs on. The off
 * row is the legacy FCFS hot path with the tenants parsed but unused;
 * the on row pays the vtime scan per grant, so the blocks/sec ratio is
 * the whole cost of multi-tenant isolation.
 */
RunStats
runFairShare(bool fair, std::uint64_t ops_per_node)
{
    constexpr std::size_t kFsNodes = 17;
    Simulation sim;
    EdmConfig cfg;
    cfg.num_nodes = kFsNodes;
    cfg.link_rate = Gbps{25.0};
    cfg.strict_grant_accounting = true;
    cfg.fair_share = fair;
    cfg.tenants.pools = {{"bulk0", 1, 6, 3.0, 0.0, 1.0, false},
                         {"bulk1", 7, 12, 1.0, 0.0, 0.4, false},
                         {"ls", 13, 16, 1.0, 0.2, 1.0, true}};
    CycleFabric fab(cfg, sim);
    fab.host(0).store()->write(0x10000,
                               std::vector<std::uint8_t>(1024, 0x5A));

    RunStats rs;
    std::vector<std::uint64_t> remaining(kFsNodes, ops_per_node);
    remaining[0] = 0;
    std::function<void(NodeId)> issue = [&](NodeId n) {
        if (remaining[n] == 0)
            return;
        --remaining[n];
        if ((remaining[n] % 3) == 0) {
            fab.write(n, 0,
                      0x20000 + static_cast<std::uint64_t>(n) * 0x10000,
                      std::vector<std::uint8_t>(
                          700, static_cast<std::uint8_t>(n)),
                      [&issue, n](Picoseconds) { issue(n); });
        } else {
            fab.read(n, 0, 0x10000, 900,
                     [&issue, n](std::vector<std::uint8_t>, Picoseconds,
                                 bool) { issue(n); });
        }
    };

    const auto t0 = std::chrono::steady_clock::now();
    for (NodeId n = 1; n < kFsNodes; ++n)
        issue(n);
    fab.run();
    rs.wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    for (NodeId n = 0; n < kFsNodes; ++n) {
        const auto &st = fab.host(n).stats();
        rs.blocks += st.mem_blocks_sent + st.mem_blocks_received;
        rs.completions += st.reads_completed + st.writes_completed;
    }
    rs.events = fab.eventsExecuted();
    rs.end_time = fab.endTime();
    const Samples &reads = fab.readLatency();
    rs.read_p99_ns = reads.count() ? reads.percentile(99) : 0.0;
    return rs;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t ops = 300;
    if (argc > 1 && argv[1][0] != '-') {
        ops = std::strtoull(argv[1], nullptr, 10);
        if (ops == 0) {
            std::fprintf(stderr,
                         "usage: %s [ops-per-node>0] [--json <path>]\n",
                         argv[0]);
            return 2;
        }
    }
    ops = static_cast<std::uint64_t>(
        static_cast<double>(ops) * bench::benchScale());
    if (ops == 0)
        ops = 1;

    std::printf("=== fabric hot path: per-block events vs block trains, "
                "%zu nodes, %llu x %llu B ops/node ===\n\n",
                kNodes, static_cast<unsigned long long>(ops),
                static_cast<unsigned long long>(kOpBytes));

    bench::BenchJson json("fabric_hotpath",
                          bench::BenchJson::pathFromArgs(argc, argv));

    std::printf("  %-13s %12s %12s %12s %9s %9s %13s\n", "workload",
                "pr1 Mbl/s", "pr2 Mbl/s", "pr3 Mbl/s", "pr3/pr1",
                "pr3/pr2", "events saved");
    double geo_pr1 = 1, geo_pr2 = 1;
    int rows = 0;
    for (Load load : {Load::BulkRead, Load::WriteStream,
                      Load::MixedFrames, Load::FramesHeavy,
                      Load::Incast}) {
        // Frames-heavy runs fewer (much bigger) ops per node.
        const std::uint64_t row_ops =
            load == Load::FramesHeavy ? ops / 4 + 1 : ops;
        // Warm-up, then one measured run per engine generation. Same
        // seedless deterministic workload -> identical simulations.
        run(load, kEngines[2], row_ops / 4 + 1);
        RunStats r[3];
        for (int e = 0; e < 3; ++e)
            r[e] = run(load, kEngines[e], row_ops);
        for (int e = 1; e < 3; ++e) {
            if (r[0].blocks != r[e].blocks ||
                r[0].end_time != r[e].end_time ||
                r[0].frames != r[e].frames ||
                r[0].completions != r[e].completions ||
                r[0].completions == 0) {
                std::fprintf(
                    stderr,
                    "FATAL: %s diverged between %s and %s "
                    "(%llu vs %llu blocks)\n",
                    loadName(load), kEngines[0].name, kEngines[e].name,
                    static_cast<unsigned long long>(r[0].blocks),
                    static_cast<unsigned long long>(r[e].blocks));
                return 1;
            }
        }
        double rate[3];
        for (int e = 0; e < 3; ++e)
            rate[e] = static_cast<double>(r[e].blocks) / r[e].wall_s / 1e6;
        const double vs_pr1 = r[0].wall_s / r[2].wall_s;
        const double vs_pr2 = r[1].wall_s / r[2].wall_s;
        const double saved = 1.0 -
            static_cast<double>(r[2].events) /
                static_cast<double>(r[0].events);
        std::printf("  %-13s %12.2f %12.2f %12.2f %8.2fx %8.2fx %12.1f%%\n",
                    loadName(load), rate[0], rate[1], rate[2], vs_pr1,
                    vs_pr2, saved * 100.0);
        for (int e = 0; e < 3; ++e) {
            json.record(loadName(load), kEngines[e].name,
                        {{"blocks_per_sec", rate[e] * 1e6},
                         {"ns_per_block", 1e3 / rate[e]},
                         {"events", static_cast<double>(r[e].events)},
                         {"speedup_vs_pr1", r[0].wall_s / r[e].wall_s}});
        }
        geo_pr1 *= vs_pr1;
        geo_pr2 *= vs_pr2;
        ++rows;
    }
    std::printf("\n  geometric-mean speedup: %.2fx vs pr1, %.2fx vs pr2 "
                "(target >= 1.5x on mixed+frames vs pr2)\n",
                std::pow(geo_pr1, 1.0 / rows),
                std::pow(geo_pr2, 1.0 / rows));

    // ---- pr8: partitioned conservative-PDES engine ------------------
    std::printf("\n=== pr8 parallel engine: pairwise 24-node workload, "
                "8 host partitions ===\n\n");
    std::printf("  %-16s %12s %12s %10s\n", "config", "Mblocks/s",
                "events", "vs pr3");
    runParallel(4, ops / 4 + 1); // warm-up (spawns the thread pool)
    const RunStats referee = runParallel(0, ops);
    constexpr int kWorkerCounts[] = {1, 2, 4, 8};
    std::printf("  %-16s %12.2f %12llu %9s\n", "pr3-referee",
                static_cast<double>(referee.blocks) / referee.wall_s / 1e6,
                static_cast<unsigned long long>(referee.events), "1.00x");
    json.record("pairwise-24node", "pr3-referee",
                {{"blocks_per_sec",
                  static_cast<double>(referee.blocks) / referee.wall_s},
                 {"ns_per_block",
                  referee.wall_s / static_cast<double>(referee.blocks) *
                      1e9},
                 {"events", static_cast<double>(referee.events)},
                 {"speedup_vs_pr3", 1.0}});
    for (int workers : kWorkerCounts) {
        const RunStats r = runParallel(workers, ops);
        // Model-level equivalence with the single-thread referee: the
        // parallel path batches trains differently (tighter lookahead
        // cap) but may not change anything the model observes.
        if (r.completions != referee.completions ||
            r.blocks != referee.blocks ||
            r.end_time != referee.end_time || r.completions == 0) {
            std::fprintf(
                stderr,
                "FATAL: pr8-parallel-w%d diverged from the referee "
                "(%llu vs %llu blocks, end %lld vs %lld)\n",
                workers, static_cast<unsigned long long>(r.blocks),
                static_cast<unsigned long long>(referee.blocks),
                static_cast<long long>(r.end_time),
                static_cast<long long>(referee.end_time));
            return 1;
        }
        const double speedup = referee.wall_s / r.wall_s;
        std::printf("  pr8-parallel-w%-2d %12.2f %12llu %9.2fx\n", workers,
                    static_cast<double>(r.blocks) / r.wall_s / 1e6,
                    static_cast<unsigned long long>(r.events), speedup);
        json.record("pairwise-24node",
                    "pr8-parallel-w" + std::to_string(workers),
                    {{"blocks_per_sec",
                      static_cast<double>(r.blocks) / r.wall_s},
                     {"ns_per_block",
                      r.wall_s / static_cast<double>(r.blocks) * 1e9},
                     {"events", static_cast<double>(r.events)},
                     {"speedup_vs_pr3", speedup}});
    }
    std::printf("\n  (scaling needs the cores: CI runners regenerate the "
                "checked-in JSON;\n   a 1-vCPU container shows ~1x)\n");

    // ---- PR 9: leaf-spine topology, sharded scheduler ---------------
    std::printf("\n=== leaf-spine incast: 32 hosts / 4 leaves onto "
                "node 0, auto-derived partitions ===\n\n");
    std::printf("  %-16s %12s %12s %10s\n", "config", "Mblocks/s",
                "events", "vs w0");
    const RunStats ls_ref = runLeafSpine(0, ops);
    std::printf("  %-16s %12.2f %12llu %9s\n", "leafspine-w0",
                static_cast<double>(ls_ref.blocks) / ls_ref.wall_s / 1e6,
                static_cast<unsigned long long>(ls_ref.events), "1.00x");
    json.record("leafspine-32node", "leafspine-w0",
                {{"blocks_per_sec",
                  static_cast<double>(ls_ref.blocks) / ls_ref.wall_s},
                 {"ns_per_block",
                  ls_ref.wall_s / static_cast<double>(ls_ref.blocks) *
                      1e9},
                 {"events", static_cast<double>(ls_ref.events)},
                 {"speedup_vs_w0", 1.0}});
    for (int workers : {2, 4}) {
        const RunStats r = runLeafSpine(workers, ops);
        // Hard bit-exactness bar (the train cap is pinned, so there is
        // no batching difference to excuse): the sharded scheduler on
        // the auto-derived per-leaf map must reproduce the serial
        // referee's schedule.
        if (r.completions != ls_ref.completions ||
            r.blocks != ls_ref.blocks ||
            r.end_time != ls_ref.end_time || r.completions == 0) {
            std::fprintf(
                stderr,
                "FATAL: leafspine-w%d diverged from the w0 referee "
                "(%llu vs %llu blocks, end %lld vs %lld)\n",
                workers, static_cast<unsigned long long>(r.blocks),
                static_cast<unsigned long long>(ls_ref.blocks),
                static_cast<long long>(r.end_time),
                static_cast<long long>(ls_ref.end_time));
            return 1;
        }
        const double speedup = ls_ref.wall_s / r.wall_s;
        std::printf("  leafspine-w%-2d   %12.2f %12llu %9.2fx\n", workers,
                    static_cast<double>(r.blocks) / r.wall_s / 1e6,
                    static_cast<unsigned long long>(r.events), speedup);
        json.record("leafspine-32node",
                    "leafspine-w" + std::to_string(workers),
                    {{"blocks_per_sec",
                      static_cast<double>(r.blocks) / r.wall_s},
                     {"ns_per_block",
                      r.wall_s / static_cast<double>(r.blocks) * 1e9},
                     {"events", static_cast<double>(r.events)},
                     {"speedup_vs_w0", speedup}});
    }

    // ---- PR 5 follow-up: chunk size under wire-charged occupancy ----
    std::printf("\n=== chunk-bytes sweep, wire-charged occupancy, "
                "7-to-1 incast ===\n\n");
    std::printf("  %-12s %12s %12s %12s\n", "chunk", "Mblocks/s",
                "read p99 ns", "end us");
    for (Bytes chunk : {Bytes{128}, Bytes{256}, Bytes{512}, Bytes{1024}}) {
        const RunStats r = runChunkSweep(chunk, ops);
        std::printf("  %-12llu %12.2f %12.1f %12.1f\n",
                    static_cast<unsigned long long>(chunk),
                    static_cast<double>(r.blocks) / r.wall_s / 1e6,
                    r.read_p99_ns,
                    static_cast<double>(r.end_time) / 1e6);
        json.record("chunk-sweep-wire",
                    "chunk-" + std::to_string(chunk) + "B",
                    {{"blocks_per_sec",
                      static_cast<double>(r.blocks) / r.wall_s},
                     {"read_p99_ns", r.read_p99_ns},
                     {"end_time_us",
                      static_cast<double>(r.end_time) / 1e6},
                     {"events", static_cast<double>(r.events)}});
    }

    // ---- PR 10: multi-tenant fair-share arbitration -----------------
    std::printf("\n=== fair-share arbitration: 17-node tenanted incast, "
                "pool tree off vs on ===\n\n");
    std::printf("  %-16s %12s %12s %10s\n", "config", "Mblocks/s",
                "read p99 ns", "vs off");
    const RunStats fs_off = runFairShare(false, ops);
    std::printf("  %-16s %12.2f %12.1f %9s\n", "fairshare-off",
                static_cast<double>(fs_off.blocks) / fs_off.wall_s / 1e6,
                fs_off.read_p99_ns, "1.00x");
    json.record("fairshare-17node", "fairshare-off",
                {{"blocks_per_sec",
                  static_cast<double>(fs_off.blocks) / fs_off.wall_s},
                 {"read_p99_ns", fs_off.read_p99_ns},
                 {"events", static_cast<double>(fs_off.events)},
                 {"cost_vs_off", 1.0}});
    {
        const RunStats r = runFairShare(true, ops);
        // Isolation reshuffles the schedule but must not lose work.
        if (r.completions != fs_off.completions || r.completions == 0) {
            std::fprintf(stderr,
                         "FATAL: fairshare-on lost completions "
                         "(%llu vs %llu)\n",
                         static_cast<unsigned long long>(r.completions),
                         static_cast<unsigned long long>(
                             fs_off.completions));
            return 1;
        }
        const double cost = fs_off.wall_s / r.wall_s;
        std::printf("  %-16s %12.2f %12.1f %9.2fx\n", "fairshare-on",
                    static_cast<double>(r.blocks) / r.wall_s / 1e6,
                    r.read_p99_ns, cost);
        json.record("fairshare-17node", "fairshare-on",
                    {{"blocks_per_sec",
                      static_cast<double>(r.blocks) / r.wall_s},
                     {"read_p99_ns", r.read_p99_ns},
                     {"events", static_cast<double>(r.events)},
                     {"cost_vs_off", cost}});
    }
    return 0;
}
