/**
 * @file
 * Fabric hot-path microbenchmark: end-to-end blocks/second through the
 * cycle-level fabric, comparing the PR 1 engine (one event per block
 * per hop, heap-only event queue) against the block-train transmission
 * path and the timing-wheel queue front end, separately and combined.
 *
 * Three closed-loop workloads on an 8-node fabric (7 compute + 1
 * memory): bulk 2 KB reads, streaming 2 KB writes, and a mixed
 * read/write load with MTU-frame interference (frames never train, so
 * this bounds the win from below). Every configuration produces
 * bit-identical simulations — test_block_train proves it for trains,
 * the block-count cross-check here re-asserts it each run — so the
 * blocks/sec ratios are pure simulator speedup.
 *
 * Run:   ./build/bench_fabric_hotpath [ops-per-node] [--json <path>]
 */

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/fabric.hpp"
#include "mac/frame.hpp"

namespace {

using namespace edm;
using namespace edm::core;

constexpr std::size_t kNodes = 8;
constexpr Bytes kOpBytes = 2048;

struct RunStats
{
    double wall_s = 0;
    std::uint64_t blocks = 0; ///< mem blocks handled (TX + RX, all hosts)
    std::uint64_t events = 0;
    std::uint64_t completions = 0;
};

enum class Load
{
    BulkRead,
    WriteStream,
    MixedFrames,
};

const char *
loadName(Load l)
{
    switch (l) {
      case Load::BulkRead: return "bulk-read";
      case Load::WriteStream: return "write-stream";
      case Load::MixedFrames: return "mixed+frames";
    }
    return "?";
}

RunStats
run(Load load, std::size_t max_train, bool wheel,
    std::uint64_t ops_per_node)
{
    Simulation sim;
    if (!wheel)
        sim.events().disableWheelForBenchmarking();
    EdmConfig cfg;
    cfg.num_nodes = kNodes;
    cfg.link_rate = Gbps{25.0};
    cfg.max_train_blocks = max_train;
    const NodeId mem = kNodes - 1;
    CycleFabric fab(cfg, sim, {mem});
    fab.host(mem).store()->write(0x10000,
                                 std::vector<std::uint8_t>(kOpBytes, 0x5A));

    RunStats rs;
    // One closed loop per compute node: the next op posts when the
    // previous completes, keeping every uplink saturated.
    std::vector<std::uint64_t> remaining(kNodes - 1, ops_per_node);
    std::function<void(NodeId)> issue = [&](NodeId n) {
        if (remaining[n] == 0)
            return;
        --remaining[n];
        const bool write_op = load == Load::WriteStream ||
            (load == Load::MixedFrames && (remaining[n] & 1));
        if (write_op) {
            fab.write(n, mem,
                      0x20000 + static_cast<std::uint64_t>(n) * 0x10000,
                      std::vector<std::uint8_t>(kOpBytes,
                                                static_cast<std::uint8_t>(n)),
                      [&issue, n](Picoseconds) { issue(n); });
        } else {
            fab.read(n, mem, 0x10000, kOpBytes,
                     [&issue, n](std::vector<std::uint8_t>, Picoseconds,
                                 bool) { issue(n); });
        }
        if (load == Load::MixedFrames && (remaining[n] % 4) == 0) {
            mac::Frame f;
            f.payload.assign(1400, 0x7B);
            fab.injectFrame(n, mac::serialize(f));
        }
    };

    const auto t0 = std::chrono::steady_clock::now();
    for (NodeId n = 0; n < kNodes - 1; ++n)
        issue(n);
    sim.run();
    rs.wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    for (NodeId n = 0; n < kNodes; ++n) {
        const auto &st = fab.host(n).stats();
        rs.blocks += st.mem_blocks_sent + st.mem_blocks_received;
        rs.completions += st.reads_completed + st.writes_completed;
    }
    rs.events = sim.events().executed();
    return rs;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t ops = 300;
    if (argc > 1 && argv[1][0] != '-') {
        ops = std::strtoull(argv[1], nullptr, 10);
        if (ops == 0) {
            std::fprintf(stderr,
                         "usage: %s [ops-per-node>0] [--json <path>]\n",
                         argv[0]);
            return 2;
        }
    }
    ops = static_cast<std::uint64_t>(
        static_cast<double>(ops) * bench::benchScale());
    if (ops == 0)
        ops = 1;

    std::printf("=== fabric hot path: per-block events vs block trains, "
                "%zu nodes, %llu x %llu B ops/node ===\n\n",
                kNodes, static_cast<unsigned long long>(ops),
                static_cast<unsigned long long>(kOpBytes));

    bench::BenchJson json("fabric_hotpath",
                          bench::BenchJson::pathFromArgs(argc, argv));

    std::printf("  %-13s %15s %15s %9s %9s %9s %13s\n", "workload",
                "pr1 Mbl/s", "train+wheel", "trains", "wheel", "both",
                "events saved");
    double geo = 1;
    int rows = 0;
    for (Load load :
         {Load::BulkRead, Load::WriteStream, Load::MixedFrames}) {
        // Warm-up then measure; same seed, so identical simulations.
        // Baseline = the PR 1 engine: one event per block per hop on the
        // heap-only queue. "train" adds both halves of the rewrite
        // (block trains + timing wheel); the two middle configurations
        // split the factor.
        run(load, 1, false, ops / 4 + 1);
        const RunStats base = run(load, 1, false, ops);
        const RunStats trains_only = run(load, 64, false, ops);
        const RunStats wheel_only = run(load, 1, true, ops);
        const RunStats train = run(load, 64, true, ops);
        if (base.blocks != train.blocks ||
            base.blocks != trains_only.blocks ||
            base.blocks != wheel_only.blocks || base.completions == 0) {
            std::fprintf(stderr,
                         "FATAL: %s block counts diverged (%llu vs %llu)\n",
                         loadName(load),
                         static_cast<unsigned long long>(base.blocks),
                         static_cast<unsigned long long>(train.blocks));
            return 1;
        }
        const double base_rate =
            static_cast<double>(base.blocks) / base.wall_s / 1e6;
        const double train_rate =
            static_cast<double>(train.blocks) / train.wall_s / 1e6;
        const double speedup = base.wall_s / train.wall_s;
        const double saved = 1.0 -
            static_cast<double>(train.events) /
                static_cast<double>(base.events);
        std::printf("  %-13s %15.2f %15.2f %8.2fx %8.2fx %8.2fx %12.1f%%\n",
                    loadName(load), base_rate, train_rate,
                    base.wall_s / trains_only.wall_s,
                    base.wall_s / wheel_only.wall_s, speedup,
                    saved * 100.0);
        json.record(loadName(load), "pr1-baseline",
                    {{"blocks_per_sec", base_rate * 1e6},
                     {"ns_per_block", 1e3 / base_rate},
                     {"events", static_cast<double>(base.events)}});
        json.record(loadName(load), "trains-only",
                    {{"blocks_per_sec",
                      static_cast<double>(trains_only.blocks) /
                          trains_only.wall_s},
                     {"speedup", base.wall_s / trains_only.wall_s}});
        json.record(loadName(load), "wheel-only",
                    {{"blocks_per_sec",
                      static_cast<double>(wheel_only.blocks) /
                          wheel_only.wall_s},
                     {"speedup", base.wall_s / wheel_only.wall_s}});
        json.record(loadName(load), "train+wheel",
                    {{"blocks_per_sec", train_rate * 1e6},
                     {"ns_per_block", 1e3 / train_rate},
                     {"events", static_cast<double>(train.events)},
                     {"speedup", speedup}});
        geo *= speedup;
        ++rows;
    }
    std::printf("\n  geometric-mean speedup: %.2fx (target >= 3x on the "
                "memory streams)\n",
                std::pow(geo, 1.0 / rows));
    return 0;
}
