/**
 * @file
 * Event-queue microbenchmark: the indexed 4-ary heap engine vs the
 * original std::function + std::unordered_set lazy-deletion design
 * (kept here verbatim as LegacyEventQueue for an honest baseline).
 *
 * Workloads, 1M events each:
 *   fire-only    — schedule everything, then drain.
 *   mixed        — schedule / cancel / fire interleaved (the retry-timer
 *                  pattern that dominates protocol models).
 *   timer-wheel  — every fired event schedules a successor; 25% of live
 *                  timers are rescheduled mid-flight (new engine) or
 *                  cancel+re-add (legacy, which has no reschedule).
 *
 * Run:   ./build/bench_event_queue [events] [--json <path>]
 */

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <queue>
#include <type_traits>
#include <unordered_set>
#include <vector>

#include "common/random.hpp"
#include "sim/event_queue.hpp"

#include "bench_util.hpp"

namespace {

using edm::EventQueue;
using edm::Picoseconds;
using edm::Rng;

/** The seed repository's event queue, unchanged, for comparison. */
class LegacyEventQueue
{
  public:
    using EventId = std::uint64_t;
    using Callback = std::function<void()>;

    Picoseconds now() const { return now_; }

    EventId
    schedule(Picoseconds when, Callback cb)
    {
        const EventId id = next_id_++;
        heap_.push(Entry{when, next_seq_++, id, std::move(cb)});
        pending_ids_.insert(id);
        return id;
    }

    bool cancel(EventId id) { return pending_ids_.erase(id) > 0; }

    bool empty() const { return pending_ids_.empty(); }

    bool
    step()
    {
        while (!heap_.empty()) {
            const Entry &top = heap_.top();
            auto it = pending_ids_.find(top.id);
            if (it == pending_ids_.end()) {
                heap_.pop();
                continue;
            }
            Entry entry = std::move(const_cast<Entry &>(top));
            heap_.pop();
            pending_ids_.erase(it);
            now_ = entry.when;
            entry.cb();
            return true;
        }
        return false;
    }

    std::uint64_t
    run()
    {
        std::uint64_t executed = 0;
        while (step())
            ++executed;
        return executed;
    }

  private:
    struct Entry
    {
        Picoseconds when;
        std::uint64_t seq;
        EventId id;
        Callback cb;

        bool
        operator>(const Entry &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    std::unordered_set<EventId> pending_ids_;
    Picoseconds now_ = 0;
    std::uint64_t next_seq_ = 0;
    EventId next_id_ = 1;
};

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** schedule N, drain N. */
template <typename Q>
double
fireOnly(std::uint64_t n)
{
    Q q;
    Rng rng(1);
    std::uint64_t fired = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < n; ++i)
        q.schedule(
            static_cast<Picoseconds>(rng.uniformInt(std::uint64_t{1}
                                                    << 40)),
            [&fired] { ++fired; });
    q.run();
    const double s = secondsSince(t0);
    if (fired != n)
        std::abort();
    return s;
}

/** Interleaved schedule / cancel / drain-in-batches. */
template <typename Q>
double
mixed(std::uint64_t n)
{
    Q q;
    Rng rng(2);
    std::vector<typename Q::EventId> live;
    std::uint64_t fired = 0;
    Picoseconds base = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < n; ++i) {
        const auto when =
            base + static_cast<Picoseconds>(rng.uniformInt(
                       std::uint64_t{1} << 20));
        live.push_back(q.schedule(when, [&fired] { ++fired; }));
        const double roll = rng.uniform();
        if (roll < 0.30 && !live.empty()) {
            const std::size_t pick = rng.uniformInt(live.size());
            q.cancel(live[pick]);
            live[pick] = live.back();
            live.pop_back();
        } else if (roll < 0.40) {
            // Drain a burst; future schedules stay >= now().
            for (int k = 0; k < 16; ++k)
                q.step();
            base = q.now();
        }
    }
    q.run();
    const double s = secondsSince(t0);
    (void)fired;
    return s;
}

/** Self-perpetuating timers, with mid-flight deadline pushes. */
template <typename Q>
double
timerWheel(std::uint64_t n)
{
    Q q;
    Rng rng(3);
    std::uint64_t fired = 0;
    std::vector<typename Q::EventId> timers;
    constexpr int kConcurrent = 1024;

    std::function<void()> arm = [&] {
        ++fired;
        if (fired + kConcurrent <= n)
            timers.push_back(q.schedule(
                q.now() + 1 +
                    static_cast<Picoseconds>(
                        rng.uniformInt(std::uint64_t{1} << 16)),
                arm));
    };
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kConcurrent; ++i)
        timers.push_back(q.schedule(
            static_cast<Picoseconds>(rng.uniformInt(std::uint64_t{1}
                                                    << 16)),
            arm));
    std::uint64_t steps = 0;
    while (!q.empty() && fired < n) {
        q.step();
        // Push out a random live timer every few firings — the retry
        // pattern. The new engine reschedules in place; the legacy
        // queue must cancel + schedule a tombstone-producing duplicate.
        if (++steps % 4 == 0 && !timers.empty()) {
            const std::size_t pick = rng.uniformInt(timers.size());
            const auto to = q.now() + 1 +
                static_cast<Picoseconds>(
                    rng.uniformInt(std::uint64_t{1} << 16));
            // Compact fired (stale) ids out so picks keep landing on
            // live timers and the reschedule path is actually hot.
            if constexpr (std::is_same_v<Q, EventQueue>) {
                if (!q.reschedule(timers[pick], to)) {
                    timers[pick] = timers.back();
                    timers.pop_back();
                }
            } else {
                if (q.cancel(timers[pick])) {
                    timers[pick] = q.schedule(to, arm);
                } else {
                    timers[pick] = timers.back();
                    timers.pop_back();
                }
            }
        }
    }
    return secondsSince(t0);
}

struct Row
{
    const char *name;
    double legacy_s;
    double new_s;
};

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t n = 1'000'000;
    if (argc > 1 && argv[1][0] != '-') {
        n = std::strtoull(argv[1], nullptr, 10);
        if (n == 0) {
            std::fprintf(stderr, "usage: %s [events>0] [--json <path>]\n",
                         argv[0]);
            return 2;
        }
    }
    edm::bench::BenchJson json(
        "event_queue", edm::bench::BenchJson::pathFromArgs(argc, argv));
    std::printf("=== event queue microbenchmark, %llu events ===\n\n",
                static_cast<unsigned long long>(n));

    // Warm-up pass so both engines see hot caches / faulted-in heaps.
    fireOnly<EventQueue>(n / 10);
    fireOnly<LegacyEventQueue>(n / 10);

    Row rows[] = {
        {"fire-only", fireOnly<LegacyEventQueue>(n), fireOnly<EventQueue>(n)},
        {"mixed", mixed<LegacyEventQueue>(n), mixed<EventQueue>(n)},
        {"timer-wheel", timerWheel<LegacyEventQueue>(n),
         timerWheel<EventQueue>(n)},
    };

    std::printf("  %-12s %14s %14s %9s\n", "workload", "legacy Mev/s",
                "wheel Mev/s", "speedup");
    double geo = 1;
    for (const Row &r : rows) {
        const double mn = static_cast<double>(n) / 1e6;
        std::printf("  %-12s %14.2f %14.2f %8.2fx\n", r.name,
                    mn / r.legacy_s, mn / r.new_s, r.legacy_s / r.new_s);
        json.record(r.name, "legacy",
                    {{"events_per_sec", static_cast<double>(n) / r.legacy_s},
                     {"ns_per_event", r.legacy_s / static_cast<double>(n) *
                                          1e9}});
        json.record(r.name, "wheel+heap",
                    {{"events_per_sec", static_cast<double>(n) / r.new_s},
                     {"ns_per_event",
                      r.new_s / static_cast<double>(n) * 1e9},
                     {"speedup", r.legacy_s / r.new_s}});
        geo *= r.legacy_s / r.new_s;
    }
    std::printf("\n  geometric-mean speedup: %.2fx (target >= 1.5x)\n",
                std::pow(geo, 1.0 / 3.0));
    return 0;
}
