/**
 * @file
 * Reproduces **Figure 5**: cycle-by-cycle latency breakdown of EDM's
 * network fabric for a 64 B read and write (one clock cycle = 2.56 ns),
 * cross-checked against the cycle simulator's stage accounting.
 */

#include <cstdio>

#include "analytic/latency_model.hpp"

using namespace edm;

namespace {

void
printBreakdown(bool read)
{
    std::printf("--- %s ---\n", read ? "READ (RREQ -> RRES)"
                                     : "WRITE (/N/ -> /G/ -> WREQ)");
    int total = 0;
    for (const auto &s : analytic::edmBreakdown(read)) {
        std::printf("  %-12s %-48s %2d cycles (%5.2f ns)\n",
                    s.location.c_str(), s.what.c_str(), s.cycles,
                    s.cycles * toNs(kPcsBlockSlot));
        total += s.cycles;
    }
    // Standard PCS pipeline crossings (2 cycles each end per traversal).
    const int crossings = read ? 8 : 8;
    std::printf("  %-12s %-48s %2d cycles (%5.2f ns)\n", "all",
                "standard PCS encode/scramble + descramble/decode",
                crossings * 2, crossings * 2 * toNs(kPcsBlockSlot));
    total += crossings * 2;
    std::printf("  network stack total: %d cycles = %.2f ns "
                "(paper: %.2f ns)\n\n",
                total, total * toNs(kPcsBlockSlot),
                read ? 107.52 : 104.96);
}

} // namespace

int
main()
{
    std::printf("=== Figure 5: EDM fabric latency breakdown, 64 B ops, "
                "1 cycle = 2.56 ns ===\n\n");
    printBreakdown(true);
    printBreakdown(false);
    std::printf("TD+PD per traversal: 19 + 10 + 19 ns (SerDes + "
                "propagation + SerDes); 4 traversals each op.\n");
    return 0;
}
