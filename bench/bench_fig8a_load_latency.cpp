/**
 * @file
 * Reproduces **Figure 8a**: normalized average latency of random 64 B
 * remote reads and writes on a 144-node, 100 Gbps cluster as network
 * load varies (0.2–0.9), for all seven fabrics, plus the mixed
 * write:read sweep at load 0.8.
 *
 * Each fabric is normalized by its *own* unloaded latency (the paper's
 * methodology). Expected shape: EDM stays within ~1.3–1.4× at 0.9; IRD
 * tracks EDM at low load but degrades from decentralized conflicts;
 * pFabric/PFC/DCTCP/CXL land near 1.5–2.2×; Fastpass is an order of
 * magnitude off due to its control-channel bottleneck.
 *
 * Also includes the DESIGN.md ablations: grant chunk size and the
 * per-pair notification cap X (paper: X = 3 works best).
 *
 * Every sweep section dispatches its points through runPointsParallel
 * (ScenarioRunner), so the figure's 100+ simulations use all cores;
 * per-point seeds are fixed, so the numbers match a serial run exactly.
 */

#include <cstdio>

#include "bench_util.hpp"

using namespace edm;
using namespace edm::bench;

namespace {

constexpr std::uint64_t kMessages = 50000;

void
loadSweep(bool writes)
{
    std::printf("--- random 64 B %s, normalized avg latency vs load ---\n",
                writes ? "writes (WREQ)" : "reads (RREQ->RRES)");
    std::printf("  %-5s", "load");
    for (auto f : allFabrics())
        std::printf(" %9s", fabricName(f));
    std::printf("\n");

    const std::vector<double> loads = {0.2, 0.4, 0.6, 0.8, 0.9};
    std::vector<PointSpec> points;
    for (double load : loads)
        for (auto f : allFabrics()) {
            PointSpec p;
            p.fabric = f;
            p.load = load;
            p.write_fraction = writes ? 1.0 : 0.0;
            p.messages = kMessages;
            points.push_back(p);
        }
    const auto results = runPointsParallel(points);

    std::size_t i = 0;
    for (double load : loads) {
        std::printf("  %-5.1f", load);
        for (auto f : allFabrics()) {
            (void)f;
            std::printf(" %9.3f", results[i++].norm_mean);
        }
        std::printf("\n");
    }
    std::printf("\n");
}

void
mixSweep()
{
    std::printf("--- mixed write:read at load 0.8, normalized avg latency"
                " ---\n");
    std::printf("  %-7s", "W:R");
    for (auto f : allFabrics())
        std::printf(" %9s", fabricName(f));
    std::printf("\n");
    const std::pair<int, int> mixes[] = {
        {100, 0}, {80, 20}, {50, 50}, {20, 80}, {0, 100}};

    std::vector<PointSpec> points;
    for (const auto &[w, r] : mixes) {
        (void)r;
        for (auto f : allFabrics()) {
            PointSpec p;
            p.fabric = f;
            p.load = 0.8;
            p.write_fraction = w / 100.0;
            p.messages = kMessages;
            points.push_back(p);
        }
    }
    const auto results = runPointsParallel(points);

    std::size_t i = 0;
    for (const auto &[w, r] : mixes) {
        std::printf("  %3d:%-3d", w, r);
        for (auto f : allFabrics()) {
            (void)f;
            std::printf(" %9.3f", results[i++].norm_mean);
        }
        std::printf("\n");
    }
    std::printf("\n");
}

void
ablations()
{
    std::printf("--- EDM ablations at load 0.8 (writes) ---\n");
    // Chunking only engages on multi-chunk messages, so the sweep uses a
    // heavy-tailed size mix rather than fixed 64 B.
    const Cdf mixed_sizes{{64, 0.5}, {1024, 0.8}, {65536, 1.0}};
    const std::vector<Bytes> chunks = {64, 128, 256, 512, 1024, 4096};
    const std::vector<int> xs = {1, 2, 3, 6, 12};

    std::vector<PointSpec> points;
    for (Bytes chunk : chunks) {
        PointSpec p;
        p.load = 0.8;
        p.messages = kMessages;
        p.size_cdf = mixed_sizes;
        p.edm_chunk = chunk;
        points.push_back(p);
    }
    for (int x : xs) {
        PointSpec p;
        p.load = 0.8;
        p.messages = kMessages;
        p.edm_x = x;
        points.push_back(p);
    }
    const auto results = runPointsParallel(points);

    std::size_t i = 0;
    std::printf("  chunk size sweep (paper setup: 256 B; heavy-tailed "
                "sizes):\n");
    for (Bytes chunk : chunks)
        std::printf("    chunk %5llu B: %.3f\n",
                    static_cast<unsigned long long>(chunk),
                    results[i++].norm_mean);
    std::printf("  per-pair notification cap X (paper: X = 3 works"
                " best):\n");
    for (int x : xs)
        std::printf("    X = %2d: %.3f\n", x, results[i++].norm_mean);
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("=== Figure 8a: 144 nodes, 100 Gbps, random 64 B "
                "messages (normalized by each fabric's unloaded latency)"
                " ===\n");
    std::printf("(paper at load 0.9: EDM ~1.2-1.4, IRD ~1.4-1.6, "
                "pFabric/PFC/DCTCP/CXL ~1.5-2.1, Fastpass 25-38)\n\n");
    loadSweep(false); // reads
    loadSweep(true);  // writes
    mixSweep();
    ablations();
    return 0;
}
