/**
 * @file
 * Reproduces **Figure 6**: YCSB requests-per-second throughput of EDM vs
 * RDMA (RoCEv2) for workloads A, B and F — the PHY-framing bandwidth
 * advantage (paper: EDM ≈ 2.7× RDMA on average).
 *
 * Each request is 8 B RREQ → 1 KB RRES for reads and 100 B WREQ for
 * writes (§4.2.2). EDM saturates the link with 66-bit block framing and
 * repurposed IFG; RDMA pays MAC minimum frames, RoCE headers, ACKs, and
 * its measured 230.2 ns per-message stack occupancy.
 *
 * Every (framing, workload) figure point runs as an independent
 * scenario on a ScenarioRunner pool, so the figure's points execute in
 * parallel and the table is assembled from the merged results.
 */

#include <cstdio>
#include <vector>

#include "analytic/bandwidth_model.hpp"
#include "core/message.hpp"
#include "sim/scenario_runner.hpp"

using namespace edm;
using analytic::Framing;
using workload::YcsbWorkload;

int
main()
{
    const Gbps rate{100.0};
    std::printf("=== Figure 6: YCSB throughput (million requests/s), "
                "%g Gbps links ===\n\n", rate.value);

    const std::vector<YcsbWorkload> workloads = {
        YcsbWorkload::A, YcsbWorkload::B, YcsbWorkload::F};
    const std::vector<Framing> framings = {Framing::Edm, Framing::Rdma};

    // One scenario per (framing, workload) point, framing-major.
    ScenarioRunner runner;
    for (Framing fr : framings)
        for (YcsbWorkload w : workloads)
            runner.add(workload::ycsbName(w),
                       [fr, w, rate](ScenarioContext &ctx) {
                           ctx.record("mrps",
                                      analytic::throughputMrps(fr, w,
                                                               rate));
                       });
    const auto results = runner.runAll();
    const std::size_t n = workloads.size();

    std::printf("  %-9s %10s %10s %8s\n", "workload", "EDM", "RDMA",
                "ratio");
    double ratio_sum = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const double edm_mrps =
            results[i].metricStat("mrps").mean();
        const double rdma_mrps =
            results[n + i].metricStat("mrps").mean();
        std::printf("  %-9s %10.2f %10.2f %7.2fx\n",
                    results[i].name.c_str(), edm_mrps, rdma_mrps,
                    edm_mrps / rdma_mrps);
        ratio_sum += edm_mrps / rdma_mrps;
    }
    std::printf("\n  average gain: %.2fx (paper: ~2.7x)\n\n",
                ratio_sum / static_cast<double>(n));

    // The §2.4 framing-overhead arithmetic behind the gap.
    std::printf("framing overheads (Limitations 1-2, §2.4):\n");
    std::printf("  8 B message in a minimum frame wastes %.0f%% of the "
                "frame\n", analytic::minFrameWaste(8) * 100);
    std::printf("  IFG+preamble overhead on 64 B frames: %.1f%%\n",
                analytic::ifgOverhead(64) * 100);
    std::printf("  EDM 8 B read request: %zu blocks = %.2f wire bytes "
                "(vs 84 B minimum wire frame)\n",
                edm::core::wireBlocks(edm::core::MemMsgType::RREQ, 0),
                edm::core::wireBytes(edm::core::MemMsgType::RREQ, 0));
    return 0;
}
