/**
 * @file
 * Shared helpers for the experiment-reproduction benchmarks: model
 * factories, wire-cost mapping, and one-line experiment runs.
 *
 * Scale note: set EDM_BENCH_SCALE (e.g. 0.2) to shrink message counts
 * for quick runs; results are noisier but the shapes survive.
 */

#ifndef EDM_BENCH_BENCH_UTIL_HPP
#define EDM_BENCH_BENCH_UTIL_HPP

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "proto/cxl.hpp"
#include "proto/edm_model.hpp"
#include "proto/fastpass.hpp"
#include "proto/ird.hpp"
#include "proto/window_model.hpp"
#include "workload/synthetic.hpp"

namespace edm {
namespace bench {

/** The seven fabrics of §4.3, in the paper's presentation order. */
enum class Fabric
{
    Edm,
    Ird,
    Pfabric,
    Pfc,
    Dctcp,
    Cxl,
    Fastpass,
};

inline std::vector<Fabric>
allFabrics()
{
    return {Fabric::Edm, Fabric::Ird, Fabric::Pfabric, Fabric::Pfc,
            Fabric::Dctcp, Fabric::Cxl, Fabric::Fastpass};
}

inline const char *
fabricName(Fabric f)
{
    switch (f) {
      case Fabric::Edm: return "EDM";
      case Fabric::Ird: return "IRD";
      case Fabric::Pfabric: return "pFabric";
      case Fabric::Pfc: return "PFC";
      case Fabric::Dctcp: return "DCTCP";
      case Fabric::Cxl: return "CXL";
      case Fabric::Fastpass: return "Fastpass";
    }
    return "?";
}

inline std::unique_ptr<proto::FabricModel>
makeModel(Fabric f, Simulation &sim, const proto::ClusterConfig &cluster,
          core::Priority edm_priority = core::Priority::Srpt,
          Bytes edm_chunk = 256, int edm_x = 3)
{
    switch (f) {
      case Fabric::Edm: {
        proto::EdmModelConfig cfg;
        cfg.priority = edm_priority;
        cfg.chunk_bytes = edm_chunk;
        cfg.max_notifications = edm_x;
        return std::make_unique<proto::EdmFlowModel>(sim, cluster, cfg);
      }
      case Fabric::Ird:
        return std::make_unique<proto::IrdModel>(sim, cluster);
      case Fabric::Pfabric:
        return std::make_unique<proto::PfabricModel>(sim, cluster);
      case Fabric::Pfc:
        return std::make_unique<proto::PfcDcqcnModel>(sim, cluster);
      case Fabric::Dctcp:
        return std::make_unique<proto::DctcpModel>(sim, cluster);
      case Fabric::Cxl:
        return std::make_unique<proto::CxlModel>(sim, cluster);
      case Fabric::Fastpass:
        return std::make_unique<proto::FastpassModel>(sim, cluster);
    }
    return nullptr;
}

/** Load-calibration wire function for each fabric's own framing. */
inline workload::WireFn
wireFn(Fabric f)
{
    switch (f) {
      case Fabric::Edm: return workload::wire::edm;
      case Fabric::Ird: return workload::wire::ethernet;
      case Fabric::Pfabric: return workload::wire::tcp;
      case Fabric::Pfc: return workload::wire::rdma;
      case Fabric::Dctcp: return workload::wire::tcp;
      case Fabric::Cxl: return workload::wire::cxl;
      case Fabric::Fastpass: return workload::wire::ethernet;
    }
    return workload::wire::ethernet;
}

/** Result of one simulated experiment point. */
struct RunResult
{
    double norm_mean = 0;  ///< mean latency / own unloaded latency
    double norm_p99 = 0;
    double mean_ns = 0;
    std::uint64_t completed = 0;
};

/** Global message-count scaling from EDM_BENCH_SCALE. */
inline double
benchScale()
{
    if (const char *s = std::getenv("EDM_BENCH_SCALE")) {
        const double v = std::atof(s);
        if (v > 0)
            return v;
    }
    return 1.0;
}

/** Run one (fabric, workload) point of the §4.3 simulations. */
inline RunResult
runPoint(Fabric f, double load, double write_fraction,
         std::uint64_t messages, const Cdf &size_cdf = {},
         std::uint64_t seed = 42,
         core::Priority edm_priority = core::Priority::Srpt,
         Bytes edm_chunk = 256, int edm_x = 3)
{
    Simulation sim(seed);
    proto::ClusterConfig cluster;
    cluster.num_nodes = 144; // §4.3 setup
    auto model = makeModel(f, sim, cluster, edm_priority, edm_chunk,
                           edm_x);

    workload::SyntheticConfig cfg;
    cfg.num_nodes = cluster.num_nodes;
    cfg.load = load;
    cfg.write_fraction = write_fraction;
    cfg.messages =
        static_cast<std::uint64_t>(messages * benchScale());
    cfg.size_cdf = size_cdf;

    Rng rng(seed * 77 + 1);
    const auto jobs = workload::generateSynthetic(rng, cfg, wireFn(f));
    for (const auto &j : jobs)
        model->offer(j);
    sim.run();

    RunResult r;
    r.norm_mean = model->normalized().mean();
    r.norm_p99 = model->normalized().percentile(99);
    r.mean_ns = model->latency().mean();
    r.completed = model->completed();
    return r;
}

} // namespace bench
} // namespace edm

#endif // EDM_BENCH_BENCH_UTIL_HPP
