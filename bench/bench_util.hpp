/**
 * @file
 * Shared helpers for the experiment-reproduction benchmarks: model
 * factories, wire-cost mapping, and one-line experiment runs.
 *
 * Scale note: set EDM_BENCH_SCALE (e.g. 0.2) to shrink message counts
 * for quick runs; results are noisier but the shapes survive.
 */

#ifndef EDM_BENCH_BENCH_UTIL_HPP
#define EDM_BENCH_BENCH_UTIL_HPP

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "proto/cxl.hpp"
#include "proto/edm_model.hpp"
#include "proto/fastpass.hpp"
#include "proto/ird.hpp"
#include "proto/window_model.hpp"
#include "sim/scenario_runner.hpp"
#include "workload/synthetic.hpp"

namespace edm {
namespace bench {

/** The seven fabrics of §4.3, in the paper's presentation order. */
enum class Fabric
{
    Edm,
    Ird,
    Pfabric,
    Pfc,
    Dctcp,
    Cxl,
    Fastpass,
};

inline std::vector<Fabric>
allFabrics()
{
    return {Fabric::Edm, Fabric::Ird, Fabric::Pfabric, Fabric::Pfc,
            Fabric::Dctcp, Fabric::Cxl, Fabric::Fastpass};
}

inline const char *
fabricName(Fabric f)
{
    switch (f) {
      case Fabric::Edm: return "EDM";
      case Fabric::Ird: return "IRD";
      case Fabric::Pfabric: return "pFabric";
      case Fabric::Pfc: return "PFC";
      case Fabric::Dctcp: return "DCTCP";
      case Fabric::Cxl: return "CXL";
      case Fabric::Fastpass: return "Fastpass";
    }
    return "?";
}

inline std::unique_ptr<proto::FabricModel>
makeModel(Fabric f, Simulation &sim, const proto::ClusterConfig &cluster,
          core::Priority edm_priority = core::Priority::Srpt,
          Bytes edm_chunk = 256, int edm_x = 3,
          bool edm_wire_charged = false)
{
    switch (f) {
      case Fabric::Edm: {
        proto::EdmModelConfig cfg;
        cfg.priority = edm_priority;
        cfg.chunk_bytes = edm_chunk;
        cfg.max_notifications = edm_x;
        cfg.wire_charged_occupancy = edm_wire_charged;
        return std::make_unique<proto::EdmFlowModel>(sim, cluster, cfg);
      }
      case Fabric::Ird:
        return std::make_unique<proto::IrdModel>(sim, cluster);
      case Fabric::Pfabric:
        return std::make_unique<proto::PfabricModel>(sim, cluster);
      case Fabric::Pfc:
        return std::make_unique<proto::PfcDcqcnModel>(sim, cluster);
      case Fabric::Dctcp:
        return std::make_unique<proto::DctcpModel>(sim, cluster);
      case Fabric::Cxl:
        return std::make_unique<proto::CxlModel>(sim, cluster);
      case Fabric::Fastpass:
        return std::make_unique<proto::FastpassModel>(sim, cluster);
    }
    return nullptr;
}

/** Load-calibration wire function for each fabric's own framing. */
inline workload::WireFn
wireFn(Fabric f)
{
    switch (f) {
      case Fabric::Edm: return workload::wire::edm;
      case Fabric::Ird: return workload::wire::ethernet;
      case Fabric::Pfabric: return workload::wire::tcp;
      case Fabric::Pfc: return workload::wire::rdma;
      case Fabric::Dctcp: return workload::wire::tcp;
      case Fabric::Cxl: return workload::wire::cxl;
      case Fabric::Fastpass: return workload::wire::ethernet;
    }
    return workload::wire::ethernet;
}

/** Result of one simulated experiment point. */
struct RunResult
{
    double norm_mean = 0;  ///< mean latency / own unloaded latency
    double norm_p99 = 0;
    double mean_ns = 0;
    std::uint64_t completed = 0;
};

/**
 * Machine-readable benchmark results: every record is one (name, config)
 * measurement with a few numeric metrics. Writing BENCH_*.json files
 * from each harness lets CI archive the perf trajectory across PRs.
 *
 *   BenchJson out("fabric_hotpath", BenchJson::pathFromArgs(argc, argv));
 *   out.record("bulk-read", "train=24", {{"ns_per_op", 12.3},
 *                                        {"blocks_per_sec", 8.1e7}});
 *   // written on destruction (or call write() explicitly)
 */
class BenchJson
{
  public:
    using Metrics = std::vector<std::pair<std::string, double>>;

    /**
     * Extract the value of a `--json <path>` argument pair; empty string
     * (no file written) when absent.
     */
    static std::string
    pathFromArgs(int argc, char **argv)
    {
        for (int i = 1; i + 1 < argc; ++i)
            if (std::strcmp(argv[i], "--json") == 0)
                return argv[i + 1];
        return {};
    }

    BenchJson(std::string bench_name, std::string path)
        : bench_name_(std::move(bench_name)), path_(std::move(path))
    {
    }

    BenchJson(const BenchJson &) = delete;
    BenchJson &operator=(const BenchJson &) = delete;

    ~BenchJson() { write(); }

    void
    record(const std::string &name, const std::string &config,
           const Metrics &metrics)
    {
        records_.push_back(Record{name, config, metrics});
    }

    /** Write (once) to the --json path; no-op without one. */
    void
    write()
    {
        if (written_ || path_.empty())
            return;
        written_ = true;
        std::FILE *f = std::fopen(path_.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "bench: cannot write %s\n", path_.c_str());
            return;
        }
        std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"results\": [",
                     bench_name_.c_str());
        for (std::size_t i = 0; i < records_.size(); ++i) {
            const Record &r = records_[i];
            std::fprintf(f, "%s\n    {\"name\": \"%s\", \"config\": \"%s\"",
                         i ? "," : "", r.name.c_str(), r.config.c_str());
            for (const auto &[key, value] : r.metrics)
                std::fprintf(f, ", \"%s\": %.17g", key.c_str(), value);
            std::fprintf(f, "}");
        }
        std::fprintf(f, "\n  ]\n}\n");
        std::fclose(f);
        std::printf("wrote %s (%zu results)\n", path_.c_str(),
                    records_.size());
    }

  private:
    struct Record
    {
        std::string name;
        std::string config;
        Metrics metrics;
    };

    std::string bench_name_;
    std::string path_;
    std::vector<Record> records_;
    bool written_ = false;
};

/** Global message-count scaling from EDM_BENCH_SCALE. */
inline double
benchScale()
{
    if (const char *s = std::getenv("EDM_BENCH_SCALE")) {
        const double v = std::atof(s);
        if (v > 0)
            return v;
    }
    return 1.0;
}

/** Fully-specified experiment point of the §4.3 simulations. */
struct PointSpec
{
    Fabric fabric = Fabric::Edm;
    double load = 0.5;
    double write_fraction = 1.0;
    std::uint64_t messages = 50000;
    Cdf size_cdf = {};
    std::uint64_t seed = 42;
    core::Priority edm_priority = core::Priority::Srpt;
    Bytes edm_chunk = 256;
    int edm_x = 3;

    /** EDM only: wire-charged port occupancy (core/occupancy.hpp). */
    bool edm_wire_charged = false;
};

/** Run one experiment point. A new knob only touches PointSpec here. */
inline RunResult
runPoint(const PointSpec &p)
{
    Simulation sim(p.seed);
    proto::ClusterConfig cluster;
    cluster.num_nodes = 144; // §4.3 setup
    auto model = makeModel(p.fabric, sim, cluster, p.edm_priority,
                           p.edm_chunk, p.edm_x, p.edm_wire_charged);

    workload::SyntheticConfig cfg;
    cfg.num_nodes = cluster.num_nodes;
    cfg.load = p.load;
    cfg.write_fraction = p.write_fraction;
    cfg.messages =
        static_cast<std::uint64_t>(p.messages * benchScale());
    cfg.size_cdf = p.size_cdf;

    Rng rng(p.seed * 77 + 1);
    const auto jobs = workload::generateSynthetic(rng, cfg,
                                                  wireFn(p.fabric));
    for (const auto &j : jobs)
        model->offer(j);
    sim.run();

    RunResult r;
    r.norm_mean = model->normalized().mean();
    r.norm_p99 = model->normalized().percentile(99);
    r.mean_ns = model->latency().mean();
    r.completed = model->completed();
    return r;
}

/** Positional convenience wrapper over runPoint(PointSpec). */
inline RunResult
runPoint(Fabric f, double load, double write_fraction,
         std::uint64_t messages, const Cdf &size_cdf = {},
         std::uint64_t seed = 42,
         core::Priority edm_priority = core::Priority::Srpt,
         Bytes edm_chunk = 256, int edm_x = 3,
         bool edm_wire_charged = false)
{
    PointSpec p;
    p.fabric = f;
    p.load = load;
    p.write_fraction = write_fraction;
    p.messages = messages;
    p.size_cdf = size_cdf;
    p.seed = seed;
    p.edm_priority = edm_priority;
    p.edm_chunk = edm_chunk;
    p.edm_x = edm_x;
    p.edm_wire_charged = edm_wire_charged;
    return runPoint(p);
}

/**
 * Run many experiment points concurrently on a ScenarioRunner pool.
 *
 * Each point carries its own explicit seed (runPoint ignores the
 * runner's derived seed streams), so the returned RunResults are
 * *identical* to calling runPoint() serially in a loop — only the
 * wall-clock changes. Results are returned in input order. Set
 * EDM_SWEEP_THREADS to pin the pool size (handled by ScenarioRunner).
 */
inline std::vector<RunResult>
runPointsParallel(const std::vector<PointSpec> &points)
{
    ScenarioRunner runner;
    for (std::size_t i = 0; i < points.size(); ++i) {
        const PointSpec &p = points[i];
        runner.add(std::string(fabricName(p.fabric)) + "#" +
                       std::to_string(i),
                   [p](ScenarioContext &ctx) {
                       const RunResult r = runPoint(p);
                       ctx.record("norm_mean", r.norm_mean);
                       ctx.record("norm_p99", r.norm_p99);
                       ctx.record("mean_ns", r.mean_ns);
                       ctx.record("completed",
                                  static_cast<double>(r.completed));
                   });
    }
    std::vector<RunResult> out;
    out.reserve(points.size());
    for (const ScenarioResult &sr : runner.runAll()) {
        RunResult r;
        r.norm_mean = sr.metricStat("norm_mean").mean();
        r.norm_p99 = sr.metricStat("norm_p99").mean();
        r.mean_ns = sr.metricStat("mean_ns").mean();
        r.completed = static_cast<std::uint64_t>(
            sr.metricStat("completed").mean());
        out.push_back(r);
    }
    return out;
}

} // namespace bench
} // namespace edm

#endif // EDM_BENCH_BENCH_UTIL_HPP
