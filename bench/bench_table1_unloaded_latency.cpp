/**
 * @file
 * Reproduces **Table 1**: unloaded Ethernet-fabric latency of remote
 * reads and writes under four stacks — TCP/IP in hardware, RoCEv2, raw
 * Ethernet, and EDM — from the compositional latency model, then
 * cross-checks the EDM column against the cycle-level fabric simulator.
 */

#include <cstdio>

#include "analytic/latency_model.hpp"
#include "core/fabric.hpp"

using namespace edm;
using analytic::FabricLatency;
using analytic::Stack;

namespace {

void
printRow(const char *label, double read_ns, double write_ns)
{
    std::printf("  %-34s %10.2f %10.2f\n", label, read_ns, write_ns);
}

void
printStack(Stack s)
{
    const FabricLatency r = analytic::fabricLatency(s, true);
    const FabricLatency w = analytic::fabricLatency(s, false);
    std::printf("%s\n", analytic::stackName(s).c_str());
    printRow("compute: protocol stack", toNs(r.compute_stack),
             toNs(w.compute_stack));
    printRow("compute: Ethernet MAC", toNs(r.compute_mac),
             toNs(w.compute_mac));
    printRow("compute: Ethernet PHY (PCS)", toNs(r.compute_pcs),
             toNs(w.compute_pcs));
    printRow("switch: layer-2 forwarding", toNs(r.switch_l2),
             toNs(w.switch_l2));
    printRow("switch: Ethernet MAC", toNs(r.switch_mac),
             toNs(w.switch_mac));
    printRow("switch: Ethernet PHY (PCS)", toNs(r.switch_pcs),
             toNs(w.switch_pcs));
    printRow("memory: protocol stack", toNs(r.memory_stack),
             toNs(w.memory_stack));
    printRow("memory: Ethernet MAC", toNs(r.memory_mac),
             toNs(w.memory_mac));
    printRow("memory: Ethernet PHY (PCS)", toNs(r.memory_pcs),
             toNs(w.memory_pcs));
    printRow("network stack latency", toNs(r.network_stack),
             toNs(w.network_stack));
    printRow("PHY (PMA+PMD) + transceiver", toNs(r.serdes),
             toNs(w.serdes));
    printRow("propagation delay", toNs(r.propagation),
             toNs(w.propagation));
    printRow("TOTAL fabric latency", toNs(r.total), toNs(w.total));
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("=== Table 1: unloaded fabric latency, 64 B remote read /"
                " write (ns) ===\n");
    std::printf("(paper: TCP/IP 3790/1890, RoCEv2 2030/1020, raw Ethernet"
                " 1110/557, EDM 299.52/296.96)\n\n");
    std::printf("  %-34s %10s %10s\n", "stage", "read", "write");
    for (Stack s : {Stack::TcpIp, Stack::RoCE, Stack::RawEthernet,
                    Stack::Edm})
        printStack(s);

    const double edm_r = toNs(analytic::fabricLatency(Stack::Edm,
                                                      true).total);
    const double edm_w = toNs(analytic::fabricLatency(Stack::Edm,
                                                      false).total);
    std::printf("speedups vs EDM (read/write):\n");
    for (Stack s : {Stack::RawEthernet, Stack::RoCE, Stack::TcpIp}) {
        std::printf("  %-22s %5.1fx / %4.1fx\n",
                    analytic::stackName(s).c_str(),
                    toNs(analytic::fabricLatency(s, true).total) / edm_r,
                    toNs(analytic::fabricLatency(s, false).total) / edm_w);
    }
    std::printf("(paper: 3.7/1.9, 6.8/3.4, 12.7/6.4)\n\n");

    // Loaded operation adds one line occupancy per granted chunk on top
    // of the unloaded totals above; what the scheduler *reserves* for
    // it depends on the charging mode (docs/WIRE_FORMAT.md).
    core::EdmConfig occ; // 25G testbed defaults
    core::EdmConfig occ_wire = occ;
    occ_wire.wire_charged_occupancy = true;
    std::printf("per-chunk line occupancy charge, %llu B chunks at 25G "
                "(legacy payload l/B -> wire-charged blocks):\n",
                static_cast<unsigned long long>(occ.chunk_bytes));
    std::printf("  read  (RRES framing) %7.2f ns -> %7.2f ns\n",
                toNs(analytic::chunkOccupancy(occ, true,
                                              occ.chunk_bytes)),
                toNs(analytic::chunkOccupancy(occ_wire, true,
                                              occ.chunk_bytes)));
    std::printf("  write (WREQ framing) %7.2f ns -> %7.2f ns\n\n",
                toNs(analytic::chunkOccupancy(occ, false,
                                              occ.chunk_bytes)),
                toNs(analytic::chunkOccupancy(occ_wire, false,
                                              occ.chunk_bytes)));

    // Cross-check: the cycle-level simulator measures the same EDM
    // fabric plus serialization and DRAM, which we report separately.
    Simulation sim;
    core::EdmConfig cfg;
    cfg.num_nodes = 2;
    cfg.link_rate = Gbps{25.0};
    core::CycleFabric fab(cfg, sim, {1});
    fab.host(1).store()->write(0x1000,
                               std::vector<std::uint8_t>(64, 0xAB));
    fab.read(0, 1, 0x1000, 64);
    sim.run();
    fab.write(0, 1, 0x2000, std::vector<std::uint8_t>(64, 0xCD));
    sim.run();

    std::printf("=== cycle-level simulator cross-check (64 B ops on the"
                " 2-node 25 GbE testbed) ===\n");
    std::printf("  measured read:  %7.2f ns "
                "(= 299.52 fabric + serialization + %.2f DRAM)\n",
                fab.readLatency().mean(),
                toNs(fab.host(1).lastDramLatency()));
    std::printf("  measured write: %7.2f ns "
                "(= 296.96 fabric + serialization)\n",
                fab.writeLatency().mean());
    return 0;
}
