/**
 * @file
 * google-benchmark microbenchmarks of the hardware-structure models and
 * hot datapath primitives: ordered-list operations, priority encoding,
 * PCS framing, scrambling, CRC-32, and scheduler matching passes. These
 * quantify the *simulator's* software costs (the hardware's costs are
 * the cycle annotations validated in the test suite).
 */

#include <benchmark/benchmark.h>

#include "common/random.hpp"
#include "core/scheduler.hpp"
#include "hw/ordered_list.hpp"
#include "hw/priority_encoder.hpp"
#include "mac/crc32.hpp"
#include "phy/pcs.hpp"
#include "phy/scrambler.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace edm;

void
BM_OrderedListInsertPop(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(7);
    std::vector<std::int64_t> prios(n);
    for (auto &p : prios)
        p = static_cast<std::int64_t>(rng.next() % 1000);
    for (auto _ : state) {
        hw::OrderedList<std::int64_t, int> list(n);
        for (std::size_t i = 0; i < n; ++i)
            list.insert(prios[i], static_cast<int>(i));
        while (auto e = list.popFront())
            benchmark::DoNotOptimize(e->value);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n) * 2);
}
BENCHMARK(BM_OrderedListInsertPop)->Arg(32)->Arg(432)->Arg(1536);

void
BM_PriorityEncoder(benchmark::State &state)
{
    hw::PriorityEncoder enc(512);
    Rng rng(5);
    for (int i = 0; i < 64; ++i)
        enc.set(rng.next() % 512);
    for (auto _ : state)
        benchmark::DoNotOptimize(enc.encode());
}
BENCHMARK(BM_PriorityEncoder);

void
BM_PcsEncodeFrame(benchmark::State &state)
{
    const std::vector<std::uint8_t> frame(
        static_cast<std::size_t>(state.range(0)), 0xA5);
    for (auto _ : state)
        benchmark::DoNotOptimize(phy::encodeFrame(frame));
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PcsEncodeFrame)->Arg(64)->Arg(1518)->Arg(9018);

void
BM_Scrambler(benchmark::State &state)
{
    phy::Scrambler s;
    std::uint64_t x = 0x123456789ABCDEFULL;
    for (auto _ : state) {
        x = s.scramble(x);
        benchmark::DoNotOptimize(x);
    }
    state.SetBytesProcessed(state.iterations() * 8);
}
BENCHMARK(BM_Scrambler);

void
BM_Crc32(benchmark::State &state)
{
    std::vector<std::uint8_t> data(
        static_cast<std::size_t>(state.range(0)));
    Rng rng(9);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.next());
    for (auto _ : state)
        benchmark::DoNotOptimize(mac::crc32(data));
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(64)->Arg(1518);

void
BM_SchedulerMatchingPass(benchmark::State &state)
{
    // Cost of one demand → grant cycle at a given port count.
    const auto n = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        state.PauseTiming();
        Simulation sim(1);
        core::EdmConfig cfg;
        cfg.num_nodes = n;
        cfg.link_rate = Gbps{100.0};
        std::uint64_t grants = 0;
        core::Scheduler sched(cfg, sim.events(),
                              [&](const core::GrantAction &) {
                                  ++grants;
                              });
        Rng rng(11);
        for (std::size_t i = 0; i < n; ++i) {
            core::ControlInfo ci;
            ci.src = static_cast<core::NodeId>(i);
            ci.dst = static_cast<core::NodeId>((i + 1 + rng.next() %
                                                (n - 1)) % n);
            ci.id = static_cast<core::MsgId>(i);
            ci.size = 256;
            sched.addWriteDemand(ci);
        }
        state.ResumeTiming();
        sim.run();
        benchmark::DoNotOptimize(grants);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SchedulerMatchingPass)->Arg(16)->Arg(144)->Arg(512);

} // namespace

BENCHMARK_MAIN();
