/**
 * @file
 * Reproduces **Figure 7**: average end-to-end latency of YCSB-A requests
 * against a key-value store whose objects are split between local DRAM
 * and remote memory in different ratios (local:remote from 100:10 to
 * 10:100).
 *
 * EDM's remote latency is *measured* on the cycle-level fabric running
 * the real KV store; local DRAM uses the DDR4 model (~82 ns); CXL and
 * RDMA remote latencies come from the Table-1 / Pond-calibrated
 * constants, as in the paper's comparison. Expected shape: EDM within
 * ~1.3× CXL and far below RDMA at every mix.
 */

#include <cstdio>
#include <vector>

#include "analytic/latency_model.hpp"
#include "kv/kv_store.hpp"
#include "mem/dram.hpp"
#include "workload/ycsb.hpp"

using namespace edm;

namespace {

/** Measured EDM remote GET/PUT latency over the cycle fabric. */
struct EdmRemote
{
    double get_ns = 0;
    double put_ns = 0;
};

EdmRemote
measureEdmRemote()
{
    Simulation sim(3);
    core::EdmConfig cfg;
    cfg.num_nodes = 2;
    cfg.link_rate = Gbps{25.0};
    core::CycleFabric fab(cfg, sim, {1});
    kv::KvStore store(fab, 0, 1, 4096, 1024);
    workload::YcsbGenerator gen(workload::YcsbWorkload::A, 4096, 5);

    // Load phase.
    for (std::uint64_t k = 0; k < 4096; k += 64) {
        store.put(k, std::vector<std::uint8_t>(100, 0x5A));
        sim.run();
    }

    RunningStat get_lat, put_lat;
    for (int i = 0; i < 400; ++i) {
        const auto op = gen.next();
        const std::uint64_t key = op.key;
        if (op.is_write) {
            store.put(key, std::vector<std::uint8_t>(100, 0x11),
                      [&](Picoseconds l) { put_lat.add(toNs(l)); });
        } else {
            store.get(key, [&](auto, Picoseconds l) {
                get_lat.add(toNs(l));
            });
        }
        sim.run();
    }
    return EdmRemote{get_lat.mean(), put_lat.mean()};
}

} // namespace

int
main()
{
    const EdmRemote edm = measureEdmRemote();

    // Local DDR4 access (~82 ns anchor in the paper's Figure 7).
    mem::Dram dram;
    (void)dram.access(0, 64, 0); // open the row
    const double local_ns = toNs(dram.access(64, 64, 1000000)) + 60.0;
    // (row-hit DRAM + on-chip path; lands near the paper's ~82 ns)

    // Remote latencies per fabric (YCSB-A: 50 % reads, 50 % writes).
    const double edm_remote = 0.5 * edm.get_ns + 0.5 * edm.put_ns;

    // CXL: single-switch fabric ~100 ns cheaper than EDM's path (Pond
    // [41], §4.2.2) plus the same DRAM service at the far side.
    const double cxl_remote = edm_remote - 100.0;

    // RDMA: Table-1 RoCEv2 fabric latency + far-side DRAM.
    const double rdma_read = toNs(analytic::fabricLatency(
        analytic::Stack::RoCE, true).total);
    const double rdma_write = toNs(analytic::fabricLatency(
        analytic::Stack::RoCE, false).total);
    const double rdma_remote =
        0.5 * (rdma_read + 80.0) + 0.5 * rdma_write;

    std::printf("=== Figure 7: YCSB-A end-to-end latency vs local:remote "
                "split (ns) ===\n");
    std::printf("(local DDR4 = %.0f ns; EDM remote measured on the cycle "
                "fabric: GET %.0f / PUT %.0f ns)\n\n",
                local_ns, edm.get_ns, edm.put_ns);
    std::printf("  %-12s %8s %8s %8s %14s\n", "local:remote", "EDM",
                "CXL", "RDMA", "EDM/CXL ratio");

    const std::vector<std::pair<int, int>> mixes = {
        {100, 10}, {66, 34}, {50, 50}, {34, 66}, {10, 100}};
    for (const auto &[lo, hi] : mixes) {
        const double p_remote =
            static_cast<double>(hi) / static_cast<double>(lo + hi);
        const double e = (1 - p_remote) * local_ns + p_remote * edm_remote;
        const double c = (1 - p_remote) * local_ns + p_remote * cxl_remote;
        const double r = (1 - p_remote) * local_ns + p_remote * rdma_remote;
        std::printf("  %3d:%-8d %8.0f %8.0f %8.0f %10.2fx\n", lo, hi, e,
                    c, r, e / c);
    }
    std::printf("\n(paper: EDM 113..395, CXL 107..313, RDMA 227..1637; "
                "EDM within ~1.3x of CXL, far below RDMA)\n");
    return 0;
}
